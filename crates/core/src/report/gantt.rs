//! Gantt-style text rendering of an execution trace — the trace-level view
//! of the paper's result-visualization component. Each phase instance is a
//! bar on a shared time axis, indented by hierarchy depth, with its
//! blocking events marked.

use crate::model::execution::ExecutionModel;
use crate::trace::execution::{ExecutionTrace, InstanceId};

/// Options for [`render_gantt`].
#[derive(Clone, Debug)]
pub struct GanttConfig {
    /// Character width of the time axis.
    pub width: usize,
    /// Deepest hierarchy level to draw (root = 0); deeper phases are
    /// omitted.
    pub max_depth: usize,
    /// Cap on emitted rows (large traces stay readable).
    pub max_rows: usize,
}

impl Default for GanttConfig {
    fn default() -> Self {
        GanttConfig {
            width: 80,
            max_depth: 3,
            max_rows: 60,
        }
    }
}

/// Renders the trace as one bar per phase instance: `█` while executing,
/// `░` while blocked. Rows appear in depth-first, start-time order.
pub fn render_gantt(model: &ExecutionModel, trace: &ExecutionTrace, cfg: &GanttConfig) -> String {
    let origin = trace.origin();
    let end = trace.makespan_end().max(origin + 1);
    let span = (end - origin) as f64;
    let col_of = |t: u64| -> usize {
        (((t.saturating_sub(origin)) as f64 / span) * cfg.width as f64).round() as usize
    };

    // Depth-first order starting from the roots.
    let mut roots: Vec<InstanceId> = trace
        .instances()
        .iter()
        .filter(|i| i.parent.is_none())
        .map(|i| i.id)
        .collect();
    roots.sort_by_key(|&id| trace.instance(id).start);
    let mut order: Vec<(InstanceId, usize)> = Vec::new();
    let mut stack: Vec<(InstanceId, usize)> = roots.into_iter().rev().map(|r| (r, 0)).collect();
    while let Some((id, depth)) = stack.pop() {
        order.push((id, depth));
        if depth < cfg.max_depth {
            let mut children = trace.children_of(id).to_vec();
            children.sort_by_key(|&c| std::cmp::Reverse((trace.instance(c).start, c.0)));
            stack.extend(children.into_iter().map(|c| (c, depth + 1)));
        }
    }

    let mut rows = Vec::new();
    for &(id, depth) in order.iter().take(cfg.max_rows) {
        let inst = trace.instance(id);
        let name = {
            let n = model.name(inst.type_id);
            if inst.key == 0 {
                n.to_string()
            } else {
                format!("{n}[{}]", inst.key)
            }
        };
        let label = format!("{}{}", "  ".repeat(depth), name);
        let (s, e) = (col_of(inst.start), col_of(inst.end).max(col_of(inst.start) + 1));
        let mut bar: Vec<char> = vec![' '; cfg.width + 1];
        for c in bar.iter_mut().take(e.min(cfg.width + 1)).skip(s) {
            *c = '█';
        }
        // Blocking overlays only on leaves: a container's "blocking" is its
        // coordinator waiting for children and would shade the whole bar.
        if trace.is_leaf(id) {
            for ev in trace.blocking_of(id) {
                let (bs, be) = (col_of(ev.start), col_of(ev.end).max(col_of(ev.start) + 1));
                for c in bar.iter_mut().take(be.min(cfg.width + 1)).skip(bs) {
                    *c = '░';
                }
            }
        }
        rows.push((label, bar.into_iter().collect::<String>()));
    }
    let omitted = order.len().saturating_sub(cfg.max_rows);

    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, bar) in rows {
        out.push_str(&format!("{label:<label_w$} |{}|\n", bar.trim_end()));
    }
    if omitted > 0 {
        out.push_str(&format!("... {omitted} more phases omitted\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::execution::{ExecutionModelBuilder, Repeat};
    use crate::trace::execution::TraceBuilder;
    use crate::trace::timeslice::MILLIS;

    fn setup() -> (ExecutionModel, ExecutionTrace) {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let s = b.child(r, "step", Repeat::Sequential);
        let _t = b.child(s, "task", Repeat::Parallel);
        let model = b.build();
        let trace = build_trace(&model);
        (model, trace)
    }

    fn build_trace(model: &ExecutionModel) -> ExecutionTrace {
        let mut tb = TraceBuilder::new(model);
        tb.add_phase(&[("job", 0)], 0, 100 * MILLIS, None, None).unwrap();
        tb.add_phase(&[("job", 0), ("step", 0)], 0, 50 * MILLIS, None, None)
            .unwrap();
        let t = tb
            .add_phase(
                &[("job", 0), ("step", 0), ("task", 0)],
                0,
                40 * MILLIS,
                Some(0),
                Some(0),
            )
            .unwrap();
        tb.add_blocking(t, "gc", 10 * MILLIS, 20 * MILLIS);
        tb.add_phase(&[("job", 0), ("step", 1)], 50 * MILLIS, 100 * MILLIS, None, None)
            .unwrap();
        tb.build().unwrap()
    }

    #[test]
    fn renders_all_rows_with_hierarchy_indent() {
        let (model, trace) = setup();
        let out = render_gantt(&model, &trace, &GanttConfig::default());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        assert!(lines[0].starts_with("job "));
        assert!(lines[1].starts_with("  step "));
        assert!(lines[2].starts_with("    task "));
        assert!(lines[3].starts_with("  step[1]"));
    }

    #[test]
    fn bars_reflect_time_extent() {
        let (model, trace) = setup();
        let cfg = GanttConfig {
            width: 100,
            ..Default::default()
        };
        let out = render_gantt(&model, &trace, &cfg);
        let lines: Vec<&str> = out.lines().collect();
        // The root spans the full width; step 0 about half of it.
        let solid = |l: &str| l.chars().filter(|&c| c == '█' || c == '░').count();
        assert!(solid(lines[0]) >= 99);
        let step0 = solid(lines[1]);
        assert!((45..=55).contains(&step0), "step0 width {step0}");
    }

    #[test]
    fn blocking_marked_distinctly() {
        let (model, trace) = setup();
        let out = render_gantt(&model, &trace, &GanttConfig::default());
        let task_line = out.lines().find(|l| l.contains("task")).unwrap();
        assert!(task_line.contains('░'), "blocked interval must render: {task_line}");
    }

    #[test]
    fn depth_and_row_limits_apply() {
        let (model, trace) = setup();
        let shallow = render_gantt(
            &model,
            &trace,
            &GanttConfig {
                max_depth: 1,
                ..Default::default()
            },
        );
        assert!(!shallow.contains("task"));
        let capped = render_gantt(
            &model,
            &trace,
            &GanttConfig {
                max_rows: 2,
                ..Default::default()
            },
        );
        assert!(capped.contains("more phases omitted"));
    }
}
