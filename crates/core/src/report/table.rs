//! Fixed-width text tables and CSV export, used by the experiment harnesses
//! to print paper-style tables.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for string-literal rows.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[c]);
            }
            // No trailing spaces.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (naive quoting: cells containing commas or quotes are
    /// double-quoted).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.headers);
        for row in &self.rows {
            write_row(row);
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats nanoseconds as seconds with two decimals.
pub fn secs(ns: u64) -> String {
    format!("{:.2}s", ns as f64 / 1e9)
}

/// Engineering notation for mixed-magnitude quantities (bytes·s next to
/// core·s in one table): 39876509.3 → "39.9M".
pub fn eng(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row_strs(&["cpu", "97.0%"]).row_strs(&["net", "3%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("cpu"));
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new(&["a", "b"]);
        t.row_strs(&["x,y", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn wrong_arity_rejected() {
        let mut t = Table::new(&["a", "b"]);
        t.row_strs(&["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.437), "43.7%");
        assert_eq!(secs(2_500_000_000), "2.50s");
        assert_eq!(eng(39_876_509.3), "39.9M");
        assert_eq!(eng(1_500.0), "1.5k");
        assert_eq!(eng(2.0e9), "2.0G");
        assert_eq!(eng(0.25), "0.25");
    }
}
