//! Self-contained HTML report — the shareable form of the paper's result
//! visualization (component ⑩): one file an engineer can attach to a
//! ticket, with the issue ranking, utilization and consumption tables, and
//! an SVG Gantt of the execution.

use std::fmt::Write as _;

use crate::model::execution::ExecutionModel;
use crate::pipeline::Characterization;
use crate::report::summary::{machine_table, usage_table};
use crate::report::table::Table;
use crate::trace::execution::{ExecutionTrace, InstanceId};

/// Options for [`render_html_report`].
#[derive(Clone, Debug)]
pub struct HtmlConfig {
    /// Report title.
    pub title: String,
    /// Pixel width of the Gantt drawing area.
    pub gantt_width: u32,
    /// Deepest hierarchy level drawn in the Gantt.
    pub max_depth: usize,
    /// Row cap for the Gantt.
    pub max_rows: usize,
}

impl Default for HtmlConfig {
    fn default() -> Self {
        HtmlConfig {
            title: "Grade10 characterization".into(),
            gantt_width: 900,
            max_depth: 3,
            max_rows: 80,
        }
    }
}

/// Renders a complete standalone HTML document.
pub fn render_html_report(
    model: &ExecutionModel,
    trace: &ExecutionTrace,
    result: &Characterization,
    cfg: &HtmlConfig,
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">\
         <title>{}</title><style>{}</style></head><body>",
        escape(&cfg.title),
        CSS
    );
    let _ = write!(out, "<h1>{}</h1>", escape(&cfg.title));
    let _ = write!(
        out,
        "<p>baseline makespan (replayed): <b>{:.2}s</b></p>",
        result.base_makespan as f64 / 1e9
    );

    out.push_str("<h2>Issues, most impactful first</h2><ol>");
    for line in result.summary(model) {
        let _ = write!(out, "<li>{}</li>", escape(&line));
    }
    if result.issues.is_empty() {
        out.push_str("<li><i>none above threshold</i></li>");
    }
    out.push_str("</ol>");

    out.push_str("<h2>Cluster utilization</h2>");
    out.push_str(&html_table(&machine_table(&result.profile)));
    out.push_str("<h2>Attributed consumption by phase type</h2>");
    out.push_str(&html_table(&usage_table(&result.profile, model, trace)));

    out.push_str("<h2>Execution</h2>");
    out.push_str(&gantt_svg(model, trace, cfg));

    out.push_str("</body></html>");
    out
}

const CSS: &str = "body{font-family:sans-serif;max-width:1000px;margin:2em auto;\
color:#222}table{border-collapse:collapse;margin:.5em 0}td,th{border:1px solid \
#ccc;padding:.25em .6em;text-align:left;font-size:.9em}th{background:#f0f0f0}\
svg{border:1px solid #ddd}h2{margin-top:1.4em}";

/// Minimal HTML escaping.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Converts a text [`Table`] into an HTML table.
fn html_table(t: &Table) -> String {
    // Re-parse the rendered text table: headers, separator, rows are split
    // on 2+ spaces, which the fixed-width renderer guarantees.
    let rendered = t.render();
    let mut lines = rendered.lines();
    let header = lines.next().unwrap_or_default();
    let _sep = lines.next();
    let split = |l: &str| -> Vec<String> {
        l.split("  ")
            .filter(|c| !c.trim().is_empty())
            .map(|c| c.trim().to_string())
            .collect()
    };
    let mut out = String::from("<table><tr>");
    for h in split(header) {
        let _ = write!(out, "<th>{}</th>", escape(&h));
    }
    out.push_str("</tr>");
    for line in lines {
        out.push_str("<tr>");
        for c in split(line) {
            let _ = write!(out, "<td>{}</td>", escape(&c));
        }
        out.push_str("</tr>");
    }
    out.push_str("</table>");
    out
}

/// Deterministic pastel color per phase type.
fn color_of(type_idx: u32) -> String {
    let hue = (type_idx as u64 * 73) % 360;
    format!("hsl({hue},60%,70%)")
}

fn gantt_svg(model: &ExecutionModel, trace: &ExecutionTrace, cfg: &HtmlConfig) -> String {
    const ROW_H: u32 = 18;
    const LABEL_W: u32 = 260;
    let origin = trace.origin();
    let end = trace.makespan_end().max(origin + 1);
    let span = (end - origin) as f64;
    let x_of = |t: u64| -> f64 {
        LABEL_W as f64 + (t.saturating_sub(origin)) as f64 / span * cfg.gantt_width as f64
    };

    // Depth-first rows, as in the text Gantt.
    let mut roots: Vec<InstanceId> = trace
        .instances()
        .iter()
        .filter(|i| i.parent.is_none())
        .map(|i| i.id)
        .collect();
    roots.sort_by_key(|&id| trace.instance(id).start);
    let mut order: Vec<(InstanceId, usize)> = Vec::new();
    let mut stack: Vec<(InstanceId, usize)> = roots.into_iter().rev().map(|r| (r, 0)).collect();
    while let Some((id, depth)) = stack.pop() {
        order.push((id, depth));
        if depth < cfg.max_depth {
            let mut children = trace.children_of(id).to_vec();
            children.sort_by_key(|&c| std::cmp::Reverse((trace.instance(c).start, c.0)));
            stack.extend(children.into_iter().map(|c| (c, depth + 1)));
        }
    }
    let rows: Vec<_> = order.into_iter().take(cfg.max_rows).collect();

    let height = rows.len() as u32 * ROW_H + 10;
    let mut svg = format!(
        "<svg width=\"{}\" height=\"{height}\" xmlns=\"http://www.w3.org/2000/svg\">",
        LABEL_W + cfg.gantt_width + 10
    );
    for (row, &(id, depth)) in rows.iter().enumerate() {
        let inst = trace.instance(id);
        let y = row as u32 * ROW_H + 4;
        let name = {
            let n = model.name(inst.type_id);
            if inst.key == 0 {
                n.to_string()
            } else {
                format!("{n}[{}]", inst.key)
            }
        };
        let _ = write!(
            svg,
            "<text x=\"{}\" y=\"{}\" font-size=\"11\">{}</text>",
            4 + depth as u32 * 10,
            y + 11,
            escape(&name)
        );
        let x0 = x_of(inst.start);
        let w = (x_of(inst.end) - x0).max(1.0);
        let _ = write!(
            svg,
            "<rect x=\"{x0:.1}\" y=\"{y}\" width=\"{w:.1}\" height=\"{}\" \
             fill=\"{}\"><title>{} {:.3}s-{:.3}s</title></rect>",
            ROW_H - 4,
            color_of(inst.type_id.0),
            escape(&trace.instance_path(model, id)),
            inst.start as f64 / 1e9,
            inst.end as f64 / 1e9,
        );
        // Blocking overlays on leaves, hatched darker.
        if trace.is_leaf(id) {
            for ev in trace.blocking_of(id) {
                let bx = x_of(ev.start);
                let bw = (x_of(ev.end) - bx).max(1.0);
                let _ = write!(
                    svg,
                    "<rect x=\"{bx:.1}\" y=\"{y}\" width=\"{bw:.1}\" height=\"{}\" \
                     fill=\"#555\" fill-opacity=\"0.55\"><title>blocked on {}</title></rect>",
                    ROW_H - 4,
                    escape(&ev.resource),
                );
            }
        }
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::execution::{ExecutionModelBuilder, Repeat};
    use crate::model::rules::RuleSet;
    use crate::pipeline::{characterize, CharacterizationConfig};
    use crate::trace::execution::TraceBuilder;
    use crate::trace::resource::{ResourceInstance, ResourceTrace};
    use crate::trace::timeslice::MILLIS;

    fn setup() -> (ExecutionModel, ExecutionTrace, Characterization) {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        b.child(r, "p", Repeat::Parallel);
        let model = b.build();
        let trace = {
            let mut tb = TraceBuilder::new(&model);
            tb.add_phase(&[("job", 0)], 0, 100 * MILLIS, None, None).unwrap();
            let p0 = tb
                .add_phase(&[("job", 0), ("p", 0)], 0, 100 * MILLIS, Some(0), Some(0))
                .unwrap();
            tb.add_blocking(p0, "gc", 20 * MILLIS, 40 * MILLIS);
            tb.add_phase(&[("job", 0), ("p", 1)], 0, 50 * MILLIS, Some(0), Some(1))
                .unwrap();
            tb.build().unwrap()
        };
        let mut rt = ResourceTrace::new();
        let cpu = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(0),
            capacity: 2.0,
        });
        rt.add_series(cpu, 0, 50 * MILLIS, &[2.0, 2.0]);
        let result = characterize(
            &model,
            &RuleSet::new(),
            &trace,
            &rt,
            &CharacterizationConfig::default(),
        );
        (model, trace, result)
    }

    #[test]
    fn produces_complete_standalone_document() {
        let (model, trace, result) = setup();
        let html = render_html_report(&model, &trace, &result, &HtmlConfig::default());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</body></html>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("Cluster utilization"));
        assert!(html.contains("cpu@0"));
        // Phase rows and the blocking overlay are drawn.
        assert!(html.contains("p[1]"));
        assert!(html.contains("blocked on gc"));
    }

    #[test]
    fn escapes_untrusted_names() {
        let mut b = ExecutionModelBuilder::new("<job>");
        let r = b.root();
        b.child(r, "a&b", Repeat::Once);
        let model = b.build();
        let trace = {
            let mut tb = TraceBuilder::new(&model);
            tb.add_phase(&[("<job>", 0)], 0, 10 * MILLIS, None, None).unwrap();
            tb.add_phase(&[("<job>", 0), ("a&b", 0)], 0, 10 * MILLIS, Some(0), Some(0))
                .unwrap();
            tb.build().unwrap()
        };
        let mut rt = ResourceTrace::new();
        let cpu = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(0),
            capacity: 1.0,
        });
        rt.add_series(cpu, 0, 10 * MILLIS, &[0.5]);
        let result = characterize(
            &model,
            &RuleSet::new(),
            &trace,
            &rt,
            &CharacterizationConfig::default(),
        );
        let html = render_html_report(&model, &trace, &result, &HtmlConfig::default());
        assert!(!html.contains("<job>"));
        assert!(html.contains("&lt;job&gt;"));
        assert!(html.contains("a&amp;b"));
    }

    #[test]
    fn row_cap_applies() {
        let (model, trace, result) = setup();
        let html = render_html_report(
            &model,
            &trace,
            &result,
            &HtmlConfig {
                max_rows: 1,
                ..Default::default()
            },
        );
        // Only the root row is drawn.
        assert!(!html.contains("p[1]"));
    }
}
