//! Result presentation (component 10 of the paper's lifecycle): aligned
//! text tables, CSV export, and time-series rendering for profiles.

pub mod campaign;
pub mod gantt;
pub mod html;
pub mod incidents;
pub mod self_profile;
pub mod summary;
pub mod table;
pub mod timeseries;

pub use campaign::{campaign_report, CampaignReport};
pub use gantt::{render_gantt, GanttConfig};
pub use html::{render_html_report, HtmlConfig};
pub use incidents::{coverage_table, incident_table};
pub use self_profile::{self_profile_table, stage_cache_line};
pub use summary::{blocked_time_table, ingest_table, machine_table, usage_by_type, usage_table};
pub use table::{eng, pct, secs, Table};
pub use timeseries::{render_presence, render_series};
