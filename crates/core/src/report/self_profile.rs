//! The self-profile table: where Grade10's own pipeline spent its time,
//! rendered from a [`MetaCharacterization`].

use crate::obs::Stage;
use crate::pipeline::MetaCharacterization;
use crate::report::summary::usage_by_type;
use crate::report::table::{pct, Table};

/// Adaptive duration rendering for span-scale times (the `secs` helper
/// rounds to 10 ms, which flattens every pipeline stage to `0.00s`).
fn dur(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the per-stage self-profile: recorded wall time, attributed CPU
/// (from the meta characterization, i.e. after the full demand → upsample
/// → attribute round trip), the stage's share of all attributed CPU, and
/// — when the binary installed the counting allocator — allocation counts.
///
/// One row per pipeline stage that actually ran, in pipeline order, plus a
/// `total` row. Worker rows aggregate the upsampling fan-out across
/// threads; their wall time can exceed the `upsample` row's on multi-core
/// runs (that is the point).
pub fn self_profile_table(meta: &MetaCharacterization) -> Table {
    let usage = usage_by_type(&meta.result.profile, &meta.trace);
    let cpu_of = |stage: Stage| -> f64 {
        meta.model
            .find_by_name(stage.name())
            .and_then(|ty| usage.get(&(ty, crate::obs::META_CPU.to_string())))
            .copied()
            .unwrap_or(0.0)
    };
    let total_cpu: f64 = Stage::ALL.iter().map(|&s| cpu_of(s)).sum();
    let any_allocs = meta.raw.spans.iter().any(|s| s.allocs > 0);

    let mut headers = vec!["stage", "spans", "wall", "cpu (unit-s)", "cpu share"];
    if any_allocs {
        headers.push("allocs");
        headers.push("alloc bytes");
    }
    let mut table = Table::new(&headers);
    let mut tot_spans = 0usize;
    let mut tot_wall = 0u64;
    let (mut tot_allocs, mut tot_bytes) = (0u64, 0u64);
    for stage in Stage::ALL {
        let spans: Vec<_> = meta
            .raw
            .spans
            .iter()
            .filter(|s| s.stage == stage)
            .collect();
        if spans.is_empty() {
            continue;
        }
        let wall: u64 = spans.iter().map(|s| s.end - s.start).sum();
        let allocs: u64 = spans.iter().map(|s| s.allocs).sum();
        let bytes: u64 = spans.iter().map(|s| s.alloc_bytes).sum();
        tot_spans += spans.len();
        tot_wall += wall;
        tot_allocs += allocs;
        tot_bytes += bytes;
        let cpu = cpu_of(stage);
        let mut row = vec![
            stage.name().to_string(),
            spans.len().to_string(),
            dur(wall),
            format!("{:.6}", cpu),
            if total_cpu > 0.0 {
                pct(cpu / total_cpu)
            } else {
                "-".to_string()
            },
        ];
        if any_allocs {
            row.push(allocs.to_string());
            row.push(bytes.to_string());
        }
        table.row(&row);
    }
    let mut row = vec![
        "total".to_string(),
        tot_spans.to_string(),
        dur(tot_wall),
        format!("{:.6}", total_cpu),
        if total_cpu > 0.0 { pct(1.0) } else { "-".to_string() },
    ];
    if any_allocs {
        row.push(tot_allocs.to_string());
        row.push(tot_bytes.to_string());
    }
    table.row(&row);
    table
}

/// One-line stage-cache summary printed under the self-profile table and
/// after cached campaign runs: the counters that tell whether incremental
/// recharacterization actually engaged. Kept as a separate line (not a
/// table row) because the table is strictly per-pipeline-stage and the
/// cache spans stages.
pub fn stage_cache_line(stats: &crate::cache::StageCacheStats) -> String {
    format!(
        "stage cache: {} hits, {} misses, {} stored ({:.1}% hit rate)",
        stats.hits,
        stats.misses,
        stats.stores,
        stats.hit_rate()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{MetaTrace, SpanRecord};
    use crate::pipeline::characterize_meta;

    #[test]
    fn table_has_row_per_stage_plus_total() {
        let spans = vec![
            SpanRecord { stage: Stage::Demand, thread: 0, start: 0, end: 400_000, allocs: 0, alloc_bytes: 0 },
            SpanRecord { stage: Stage::Upsample, thread: 0, start: 400_000, end: 2_000_000, allocs: 0, alloc_bytes: 0 },
            SpanRecord { stage: Stage::Attribute, thread: 0, start: 2_000_000, end: 2_600_000, allocs: 0, alloc_bytes: 0 },
        ];
        let raw = MetaTrace { spans, end: 2_600_000 };
        let meta = characterize_meta(&raw).expect("meta characterization");
        let table = self_profile_table(&meta);
        let out = table.render();
        assert!(out.contains("demand"), "{out}");
        assert!(out.contains("upsample"), "{out}");
        assert!(out.contains("attribute"), "{out}");
        assert!(out.contains("total"), "{out}");
        // Stages that never ran are omitted: 3 stage rows + total.
        assert_eq!(table.len(), 4, "{out}");
        // No allocation columns when nothing was counted.
        assert!(!out.contains("allocs"), "{out}");
    }

    #[test]
    fn stage_cache_line_reports_counters_and_rate() {
        let line = stage_cache_line(&crate::cache::StageCacheStats {
            hits: 9,
            misses: 1,
            stores: 1,
        });
        assert_eq!(line, "stage cache: 9 hits, 1 misses, 1 stored (90.0% hit rate)");
        let idle = stage_cache_line(&crate::cache::StageCacheStats::default());
        assert!(idle.contains("(0.0% hit rate)"), "{idle}");
    }

    #[test]
    fn alloc_columns_appear_when_counted() {
        let spans = vec![SpanRecord {
            stage: Stage::Demand,
            thread: 0,
            start: 0,
            end: 1_000_000,
            allocs: 42,
            alloc_bytes: 4096,
        }];
        let raw = MetaTrace { spans, end: 1_000_000 };
        let meta = characterize_meta(&raw).expect("meta characterization");
        let out = self_profile_table(&meta).render();
        assert!(out.contains("allocs"), "{out}");
        assert!(out.contains("42"), "{out}");
        assert!(out.contains("4096"), "{out}");
    }
}
