//! Versioned binary trace container: the offline interchange format for
//! event streams and monitoring data, alongside the JSON-lines text forms.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [0..8)    magic            b"G10TRACE"
//! [8..12)   format version   u32 (currently 1)
//! [12..16)  section count    u32
//! [16..24)  table checksum   u64  FNV-1a over the raw section table
//! [24..)    section table    count × 32-byte entries:
//!             id u32 | reserved u32 | offset u64 | len u64 | crc u64
//! ...       section payloads at their recorded offsets
//! ```
//!
//! Sections (`crc` is FNV-1a over the payload bytes — the same
//! [`crate::hash::fnv1a`] the campaign journal uses):
//!
//! * `STRINGS` (1): `u32` count, then per string `u32` length + UTF-8 bytes.
//!   Deduplicated pool for phase-type names and resource kinds.
//! * `PATHS` (2): `u32` count, then per path `u32` segment count +
//!   per segment (`u32` string id, `u32` instance key). Deduplicated.
//! * `EVENTS` (3): `u32` count, then fixed 20-byte records:
//!   `time u64 | machine u16 | thread u16 | kind u8 | pad [u8; 3] |
//!   payload u32`. Kinds: 0 `PhaseStart` / 1 `PhaseEnd` (payload = path
//!   id), 2 `BlockStart` / 3 `BlockEnd` (payload = string id of the
//!   blocking resource).
//! * `RESOURCES` (4, optional): `u32` count, then per resource
//!   `u32` kind string id | `u32` machine (`u32::MAX` = cluster-global) |
//!   `u64` capacity bits | `u32` measurement count | per measurement
//!   `start u64 | end u64 | avg-bits u64`. Floats travel as
//!   [`f64::to_bits`], so a round trip is exact.
//!
//! Damage handling: every structural defect — short header, wrong magic,
//! unsupported version, truncated or overlapping sections, zero-length
//! sections, checksum mismatches, dangling string/path references —
//! returns [`Grade10Error::Serialization`]. Decoding never panics on
//! arbitrary input; `tests/binary_format.rs` fuzzes this contract.

use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

use crate::error::Grade10Error;
use crate::hash::fnv1a;
use crate::parse::{RawEvent, RawEventKind, RawPath};
use crate::trace::repair::RawSeries;
use crate::trace::resource::{Measurement, ResourceInstance, ResourceTrace};

/// File magic: the first eight bytes of every binary trace.
pub const MAGIC: [u8; 8] = *b"G10TRACE";
/// Current container version. Readers reject anything newer; older
/// versions are migrated explicitly when the format evolves (none yet).
pub const FORMAT_VERSION: u32 = 1;

const SECTION_STRINGS: u32 = 1;
const SECTION_PATHS: u32 = 2;
const SECTION_EVENTS: u32 = 3;
const SECTION_RESOURCES: u32 = 4;

const HEADER_LEN: usize = 24;
const SECTION_ENTRY_LEN: usize = 32;
const EVENT_RECORD_LEN: usize = 20;
pub(crate) const MACHINE_NONE: u32 = u32::MAX;

/// A decoded binary trace: the event stream plus optional monitoring data.
#[derive(Debug, Clone)]
pub struct BinaryTrace {
    /// The raw execution events, in the order they were written.
    pub events: Vec<RawEvent>,
    /// Monitoring data, when the writer included a `RESOURCES` section.
    pub resources: Option<ResourceTrace>,
}

fn corrupt_in(label: &str, msg: impl Into<String>) -> Grade10Error {
    Grade10Error::Serialization(format!("{label}: {}", msg.into()))
}

fn corrupt(msg: impl Into<String>) -> Grade10Error {
    corrupt_in("binary trace", msg)
}

/// Identity of one container dialect: the magic, the version a reader
/// accepts, and the label damage reports use. The binary trace format and
/// the stage-cache records (`crate::cache`) share the container machinery
/// and differ only in their spec.
pub(crate) struct ContainerSpec {
    /// Eight-byte file magic.
    pub(crate) magic: &'static [u8; 8],
    /// The single version this reader accepts.
    pub(crate) version: u32,
    /// Human label used in corruption messages ("binary trace", ...).
    pub(crate) label: &'static str,
}

/// The binary trace dialect of the section-table container.
pub(crate) const TRACE_CONTAINER: ContainerSpec = ContainerSpec {
    magic: &MAGIC,
    version: FORMAT_VERSION,
    label: "binary trace",
};

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Interner {
    pool: Vec<String>,
    ids: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = self.pool.len() as u32;
        self.pool.push(s.to_string());
        self.ids.insert(s.to_string(), id);
        id
    }
}

pub(crate) fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Shared encoder for the deduplicated string/path pools and the record
/// payloads that reference them. [`encode_trace`] and the stage-cache
/// codecs (`crate::cache::codec`) write the same record layouts through
/// this one type, so the offline container and the cache records cannot
/// drift apart.
#[derive(Default)]
pub(crate) struct PoolEncoder {
    strings: Interner,
    path_ids: HashMap<RawPath, u32>,
    paths: Vec<Vec<(u32, u32)>>,
}

impl PoolEncoder {
    fn intern_path(&mut self, path: &RawPath) -> u32 {
        if let Some(&id) = self.path_ids.get(path) {
            return id;
        }
        let id = self.paths.len() as u32;
        let segs = path
            .iter()
            .map(|(name, key)| (self.strings.intern(name), *key))
            .collect();
        self.paths.push(segs);
        self.path_ids.insert(path.clone(), id);
        id
    }

    /// Encodes an `EVENTS`-layout payload, interning names and paths as a
    /// side effect.
    pub(crate) fn encode_events(&mut self, events: &[RawEvent]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(4 + events.len() * EVENT_RECORD_LEN);
        push_u32(&mut buf, events.len() as u32);
        for ev in events {
            let (kind, payload) = match &ev.kind {
                RawEventKind::PhaseStart { path } => (0u8, self.intern_path(path)),
                RawEventKind::PhaseEnd { path } => (1u8, self.intern_path(path)),
                RawEventKind::BlockStart { resource } => (2u8, self.strings.intern(resource)),
                RawEventKind::BlockEnd { resource } => (3u8, self.strings.intern(resource)),
            };
            push_u64(&mut buf, ev.time);
            buf.extend_from_slice(&ev.machine.to_le_bytes());
            buf.extend_from_slice(&ev.thread.to_le_bytes());
            buf.push(kind);
            buf.extend_from_slice(&[0u8; 3]);
            push_u32(&mut buf, payload);
        }
        buf
    }

    /// Encodes a `RESOURCES`-layout payload from (instance, measurements)
    /// pairs.
    pub(crate) fn encode_series<'a>(
        &mut self,
        series: impl ExactSizeIterator<Item = (&'a ResourceInstance, &'a [Measurement])>,
    ) -> Vec<u8> {
        let mut buf = Vec::new();
        push_u32(&mut buf, series.len() as u32);
        for (inst, ms) in series {
            push_u32(&mut buf, self.strings.intern(&inst.kind));
            push_u32(&mut buf, inst.machine.map_or(MACHINE_NONE, |m| m as u32));
            push_u64(&mut buf, inst.capacity.to_bits());
            push_u32(&mut buf, ms.len() as u32);
            for m in ms {
                push_u64(&mut buf, m.start);
                push_u64(&mut buf, m.end);
                push_u64(&mut buf, m.avg.to_bits());
            }
        }
        buf
    }

    /// Renders the `STRINGS` payload. Call after every record payload so
    /// the pool is complete.
    pub(crate) fn strings_payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        push_u32(&mut buf, self.strings.pool.len() as u32);
        for s in &self.strings.pool {
            push_u32(&mut buf, s.len() as u32);
            buf.extend_from_slice(s.as_bytes());
        }
        buf
    }

    /// Renders the `PATHS` payload. Call after every record payload so the
    /// pool is complete.
    pub(crate) fn paths_payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        push_u32(&mut buf, self.paths.len() as u32);
        for path in &self.paths {
            push_u32(&mut buf, path.len() as u32);
            for &(sid, key) in path {
                push_u32(&mut buf, sid);
                push_u32(&mut buf, key);
            }
        }
        buf
    }
}

/// Assembles a section-table container: header (magic, version, section
/// count, table checksum), the checksummed section table, then the
/// payloads back to back. Shared by the binary trace format and the
/// stage-cache records, which differ only in their [`ContainerSpec`] and
/// section vocabulary.
pub(crate) fn build_container(
    magic: &[u8; 8],
    version: u32,
    sections: &[(u32, Vec<u8>)],
) -> Vec<u8> {
    let table_len = sections.len() * SECTION_ENTRY_LEN;
    let mut offset = (HEADER_LEN + table_len) as u64;
    let mut table = Vec::with_capacity(table_len);
    for (id, payload) in sections {
        push_u32(&mut table, *id);
        push_u32(&mut table, 0); // reserved
        push_u64(&mut table, offset);
        push_u64(&mut table, payload.len() as u64);
        push_u64(&mut table, fnv1a(payload));
        offset += payload.len() as u64;
    }

    let mut out = Vec::with_capacity(offset as usize);
    out.extend_from_slice(magic);
    push_u32(&mut out, version);
    push_u32(&mut out, sections.len() as u32);
    push_u64(&mut out, fnv1a(&table));
    out.extend_from_slice(&table);
    for (_, payload) in sections {
        out.extend_from_slice(payload);
    }
    out
}

/// Serializes events (and optionally monitoring data) into the binary
/// container format.
pub fn encode_trace(events: &[RawEvent], resources: Option<&ResourceTrace>) -> Vec<u8> {
    let mut enc = PoolEncoder::default();
    // Events first: interning fills the string/path pools as a side effect.
    let events_payload = enc.encode_events(events);
    let resources_payload = resources.map(|rt| {
        let series: Vec<(&ResourceInstance, &[Measurement])> = rt
            .instances()
            .iter()
            .enumerate()
            .map(|(r, inst)| {
                (inst, rt.measurements(crate::trace::resource::ResourceIdx(r as u32)))
            })
            .collect();
        enc.encode_series(series.into_iter())
    });

    let mut sections: Vec<(u32, Vec<u8>)> = vec![
        (SECTION_STRINGS, enc.strings_payload()),
        (SECTION_PATHS, enc.paths_payload()),
        (SECTION_EVENTS, events_payload),
    ];
    if let Some(p) = resources_payload {
        sections.push((SECTION_RESOURCES, p));
    }
    build_container(&MAGIC, FORMAT_VERSION, &sections)
}

/// Encodes and writes a binary trace to `path` via a temp-file rename, so
/// a crash mid-write leaves no half-written file under the final name.
pub fn write_trace_file(
    path: &Path,
    events: &[RawEvent],
    resources: Option<&ResourceTrace>,
) -> Result<(), Grade10Error> {
    let bytes = encode_trace(events, resources);
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over a byte slice. Every accessor
/// returns a classified error instead of panicking, which is what makes
/// the no-panic-on-corrupt-input guarantee auditable.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8], what: &'static str) -> Self {
        Cursor { bytes, pos: 0, what }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], Grade10Error> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| {
                corrupt(format!(
                    "{} section truncated at byte {} (wanted {} more of {})",
                    self.what,
                    self.pos,
                    n,
                    self.bytes.len()
                ))
            })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, Grade10Error> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, Grade10Error> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, Grade10Error> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, Grade10Error> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn finish(self) -> Result<(), Grade10Error> {
        if self.pos != self.bytes.len() {
            return Err(corrupt(format!(
                "{} section has {} trailing bytes",
                self.what,
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

pub(crate) struct Section<'a> {
    pub(crate) id: u32,
    pub(crate) payload: &'a [u8],
}

/// Validates a section-table container against `spec` (magic, version,
/// table checksum, section bounds, per-section checksums) and returns the
/// verified sections.
pub(crate) fn parse_container<'a>(
    bytes: &'a [u8],
    spec: &ContainerSpec,
) -> Result<Vec<Section<'a>>, Grade10Error> {
    let bad = |msg: String| corrupt_in(spec.label, msg);
    if bytes.len() < HEADER_LEN {
        return Err(bad(format!(
            "file too short for header: {} bytes",
            bytes.len()
        )));
    }
    if bytes[0..8] != *spec.magic {
        return Err(bad(format!("bad magic (not a Grade10 {})", spec.label)));
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != spec.version {
        return Err(bad(format!(
            "unsupported version {version} (reader supports {})",
            spec.version
        )));
    }
    let count = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
    let table_crc = u64::from_le_bytes([
        bytes[16], bytes[17], bytes[18], bytes[19], bytes[20], bytes[21], bytes[22], bytes[23],
    ]);
    let table_end = HEADER_LEN
        .checked_add(count.checked_mul(SECTION_ENTRY_LEN).ok_or_else(|| {
            bad(format!("absurd section count {count}"))
        })?)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| {
            bad(format!(
                "section table truncated: {count} sections do not fit in {} bytes",
                bytes.len()
            ))
        })?;
    let table = &bytes[HEADER_LEN..table_end];
    let actual = fnv1a(table);
    if actual != table_crc {
        return Err(bad(format!(
            "section table checksum mismatch (recorded {table_crc:#018x}, computed {actual:#018x})"
        )));
    }

    let mut sections = Vec::with_capacity(count);
    let mut next_free = table_end as u64;
    for (i, entry) in table.chunks_exact(SECTION_ENTRY_LEN).enumerate() {
        let id = u32::from_le_bytes([entry[0], entry[1], entry[2], entry[3]]);
        let offset = u64::from_le_bytes([
            entry[8], entry[9], entry[10], entry[11], entry[12], entry[13], entry[14], entry[15],
        ]);
        let len = u64::from_le_bytes([
            entry[16], entry[17], entry[18], entry[19], entry[20], entry[21], entry[22], entry[23],
        ]);
        let crc = u64::from_le_bytes([
            entry[24], entry[25], entry[26], entry[27], entry[28], entry[29], entry[30], entry[31],
        ]);
        if len == 0 {
            return Err(bad(format!("section {i} (id {id}) has zero length")));
        }
        if offset < next_free {
            return Err(bad(format!(
                "section {i} (id {id}) overlaps preceding data (offset {offset})"
            )));
        }
        let end = offset.checked_add(len).filter(|&e| e <= bytes.len() as u64);
        let Some(end) = end else {
            return Err(bad(format!(
                "section {i} (id {id}) truncated: [{offset}, {offset}+{len}) exceeds file of {} bytes",
                bytes.len()
            )));
        };
        let payload = &bytes[offset as usize..end as usize];
        let actual = fnv1a(payload);
        if actual != crc {
            return Err(bad(format!(
                "section {i} (id {id}) checksum mismatch (recorded {crc:#018x}, computed {actual:#018x})"
            )));
        }
        next_free = end;
        sections.push(Section { id, payload });
    }
    Ok(sections)
}

/// Validates the binary trace container and returns the verified sections.
fn validate_container(bytes: &[u8]) -> Result<Vec<Section<'_>>, Grade10Error> {
    parse_container(bytes, &TRACE_CONTAINER)
}

pub(crate) fn decode_strings(payload: &[u8]) -> Result<Vec<String>, Grade10Error> {
    let mut c = Cursor::new(payload, "strings");
    let count = c.u32()? as usize;
    let mut out = Vec::new();
    for i in 0..count {
        let len = c.u32()? as usize;
        let bytes = c.take(len)?;
        let s = std::str::from_utf8(bytes)
            .map_err(|_| corrupt(format!("string {i} is not valid UTF-8")))?;
        out.push(s.to_string());
    }
    c.finish()?;
    Ok(out)
}

pub(crate) fn decode_paths(
    payload: &[u8],
    strings: &[String],
) -> Result<Vec<RawPath>, Grade10Error> {
    let mut c = Cursor::new(payload, "paths");
    let count = c.u32()? as usize;
    let mut out = Vec::new();
    for i in 0..count {
        let nsegs = c.u32()? as usize;
        let mut path = Vec::new();
        for _ in 0..nsegs {
            let sid = c.u32()? as usize;
            let key = c.u32()?;
            let name = strings.get(sid).ok_or_else(|| {
                corrupt(format!(
                    "path {i} references string {sid} of {}",
                    strings.len()
                ))
            })?;
            path.push((name.clone(), key));
        }
        out.push(path);
    }
    c.finish()?;
    Ok(out)
}

pub(crate) fn decode_events(
    payload: &[u8],
    strings: &[String],
    paths: &[RawPath],
) -> Result<Vec<RawEvent>, Grade10Error> {
    let mut c = Cursor::new(payload, "events");
    let count = c.u32()? as usize;
    let mut out = Vec::new();
    for i in 0..count {
        let time = c.u64()?;
        let machine = c.u16()?;
        let thread = c.u16()?;
        let kind = c.take(4)?[0];
        let payload_id = c.u32()? as usize;
        let path = |what: &str| -> Result<RawPath, Grade10Error> {
            paths.get(payload_id).cloned().ok_or_else(|| {
                corrupt(format!(
                    "event {i} ({what}) references path {payload_id} of {}",
                    paths.len()
                ))
            })
        };
        let string = |what: &str| -> Result<String, Grade10Error> {
            strings.get(payload_id).cloned().ok_or_else(|| {
                corrupt(format!(
                    "event {i} ({what}) references string {payload_id} of {}",
                    strings.len()
                ))
            })
        };
        let kind = match kind {
            0 => RawEventKind::PhaseStart { path: path("PhaseStart")? },
            1 => RawEventKind::PhaseEnd { path: path("PhaseEnd")? },
            2 => RawEventKind::BlockStart { resource: string("BlockStart")? },
            3 => RawEventKind::BlockEnd { resource: string("BlockEnd")? },
            k => return Err(corrupt(format!("event {i} has unknown kind {k}"))),
        };
        out.push(RawEvent {
            time,
            machine,
            thread,
            kind,
        });
    }
    c.finish()?;
    Ok(out)
}

/// Decodes a `RESOURCES`-layout payload into raw series, with no trace
/// validation — the caller decides whether (and how strictly) to rebuild
/// a [`ResourceTrace`]. The stage cache round-trips repaired series
/// through this layout verbatim.
pub(crate) fn decode_series(
    payload: &[u8],
    strings: &[String],
) -> Result<Vec<RawSeries>, Grade10Error> {
    let mut c = Cursor::new(payload, "resources");
    let count = c.u32()? as usize;
    let mut out = Vec::new();
    for i in 0..count {
        let sid = c.u32()? as usize;
        let machine_raw = c.u32()?;
        let capacity = f64::from_bits(c.u64()?);
        let kind = strings.get(sid).ok_or_else(|| {
            corrupt(format!(
                "resource {i} references string {sid} of {}",
                strings.len()
            ))
        })?;
        let machine = if machine_raw == MACHINE_NONE {
            None
        } else {
            u16::try_from(machine_raw)
                .map(Some)
                .map_err(|_| corrupt(format!("resource {i} has machine {machine_raw} out of range")))?
        };
        let mut measurements = Vec::new();
        let mcount = c.u32()? as usize;
        for _ in 0..mcount {
            let start = c.u64()?;
            let end = c.u64()?;
            let avg = f64::from_bits(c.u64()?);
            measurements.push(Measurement { start, end, avg });
        }
        out.push(RawSeries {
            instance: ResourceInstance {
                kind: kind.clone(),
                machine,
                capacity,
            },
            measurements,
        });
    }
    c.finish()?;
    Ok(out)
}

fn decode_resources(payload: &[u8], strings: &[String]) -> Result<ResourceTrace, Grade10Error> {
    let series = decode_series(payload, strings)?;
    let mut rt = ResourceTrace::new();
    for s in series {
        let idx = rt.try_add_resource(s.instance)?;
        for m in s.measurements {
            rt.try_add_measurement(idx, m)?;
        }
    }
    Ok(rt)
}

/// Decodes a binary trace from in-memory bytes, verifying every checksum.
/// All damage — truncation, bit flips, dangling references — yields a
/// [`Grade10Error`]; this function does not panic on arbitrary input.
pub fn decode_trace(bytes: &[u8]) -> Result<BinaryTrace, Grade10Error> {
    let sections = validate_container(bytes)?;
    let find = |id: u32| sections.iter().find(|s| s.id == id).map(|s| s.payload);
    let strings = decode_strings(
        find(SECTION_STRINGS).ok_or_else(|| corrupt("missing strings section"))?,
    )?;
    let paths = decode_paths(
        find(SECTION_PATHS).ok_or_else(|| corrupt("missing paths section"))?,
        &strings,
    )?;
    let events = decode_events(
        find(SECTION_EVENTS).ok_or_else(|| corrupt("missing events section"))?,
        &strings,
        &paths,
    )?;
    let resources = find(SECTION_RESOURCES)
        .map(|p| decode_resources(p, &strings))
        .transpose()?;
    Ok(BinaryTrace { events, resources })
}

// ---------------------------------------------------------------------------
// Memory-mapped file access
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> i32;
    }
}

/// The raw bytes of an opened trace file: a read-only memory map on Unix,
/// an owned buffer elsewhere (or when mapping fails). Either way it derefs
/// to `&[u8]`, so the decoder is agnostic to where the bytes live.
pub enum TraceBytes {
    /// A read-only `mmap` of the file; unmapped on drop.
    #[cfg(unix)]
    Mapped {
        /// Start of the mapping.
        ptr: *const u8,
        /// Length of the mapping in bytes.
        len: usize,
    },
    /// The file contents read into memory.
    Owned(Vec<u8>),
}

// The mapping is read-only and never aliased mutably.
#[cfg(unix)]
unsafe impl Send for TraceBytes {}
#[cfg(unix)]
unsafe impl Sync for TraceBytes {}

impl std::ops::Deref for TraceBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            TraceBytes::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr, *len)
            },
            TraceBytes::Owned(v) => v,
        }
    }
}

impl Drop for TraceBytes {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let TraceBytes::Mapped { ptr, len } = self {
            // Failure here would mean the mapping was already gone; there
            // is nothing useful to do about it during drop.
            unsafe {
                sys::munmap(*ptr as *mut std::ffi::c_void, *len);
            }
        }
    }
}

/// Opens a trace file as bytes: zero-copy `mmap` on Unix, falling back to
/// an ordinary read when the file is empty or the mapping fails.
pub fn map_trace_file(path: &Path) -> Result<TraceBytes, Grade10Error> {
    #[cfg(unix)]
    {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len() as usize;
        if len > 0 {
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize != -1 {
                return Ok(TraceBytes::Mapped {
                    ptr: ptr as *const u8,
                    len,
                });
            }
        }
    }
    Ok(TraceBytes::Owned(std::fs::read(path)?))
}

/// Opens, validates, and decodes a binary trace file (memory-mapped where
/// the platform supports it).
pub fn read_trace_file(path: &Path) -> Result<BinaryTrace, Grade10Error> {
    let bytes = map_trace_file(path)?;
    decode_trace(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<RawEvent> {
        let path = vec![("job".to_string(), 0u32)];
        vec![
            RawEvent {
                time: 0,
                machine: 0,
                thread: 0,
                kind: RawEventKind::PhaseStart { path: path.clone() },
            },
            RawEvent {
                time: 5_000_000,
                machine: 0,
                thread: 1,
                kind: RawEventKind::BlockStart {
                    resource: "msgq".into(),
                },
            },
            RawEvent {
                time: 9_000_000,
                machine: 0,
                thread: 1,
                kind: RawEventKind::BlockEnd {
                    resource: "msgq".into(),
                },
            },
            RawEvent {
                time: 20_000_000,
                machine: 0,
                thread: 0,
                kind: RawEventKind::PhaseEnd { path },
            },
        ]
    }

    fn sample_resources() -> ResourceTrace {
        let mut rt = ResourceTrace::new();
        let cpu = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(0),
            capacity: 4.0,
        });
        rt.add_series(cpu, 0, 10_000_000, &[0.5, 1.25, 0.125]);
        let net = rt.add_resource(ResourceInstance {
            kind: "net".into(),
            machine: None,
            capacity: 125e6,
        });
        rt.add_series(net, 0, 10_000_000, &[1e6, 0.0]);
        rt
    }

    #[test]
    fn round_trip_events_only() {
        let events = sample_events();
        let bytes = encode_trace(&events, None);
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back.events, events);
        assert!(back.resources.is_none());
    }

    #[test]
    fn round_trip_with_resources() {
        let events = sample_events();
        let rt = sample_resources();
        let bytes = encode_trace(&events, Some(&rt));
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back.events, events);
        let brt = back.resources.unwrap();
        assert_eq!(brt.instances(), rt.instances());
        for r in 0..rt.instances().len() {
            let idx = crate::trace::resource::ResourceIdx(r as u32);
            assert_eq!(brt.measurements(idx), rt.measurements(idx));
        }
    }

    #[test]
    fn file_round_trip_via_mmap() {
        let dir = std::env::temp_dir().join("grade10-binary-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.g10t");
        let events = sample_events();
        write_trace_file(&path, &events, None).unwrap();
        let back = read_trace_file(&path).unwrap();
        assert_eq!(back.events, events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_event_stream_round_trips() {
        let bytes = encode_trace(&[], None);
        let back = decode_trace(&bytes).unwrap();
        assert!(back.events.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_trace(&sample_events(), None);
        bytes[0] ^= 0xFF;
        let err = decode_trace(&bytes).unwrap_err();
        assert!(matches!(err, Grade10Error::Serialization(_)), "{err}");
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let mut bytes = encode_trace(&sample_events(), None);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let err = decode_trace(&bytes).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let bytes = encode_trace(&sample_events(), Some(&sample_resources()));
        for keep in 0..bytes.len() {
            assert!(
                decode_trace(&bytes[..keep]).is_err(),
                "decode of {keep}-byte prefix unexpectedly succeeded"
            );
        }
    }
}
