//! Execution and resource traces: what one workload run looked like.

pub mod binary;
pub mod execution;
pub mod repair;
pub mod resource;
pub mod timeslice;

pub use binary::{decode_trace, encode_trace, read_trace_file, write_trace_file, BinaryTrace};
pub use execution::{BlockingEvent, ExecutionTrace, InstanceId, PhaseInstance, TraceBuilder};
pub use repair::{
    ingest, ingest_events, ingest_monitoring, repair_events, IngestConfig, IngestMode,
    IngestReport, IngestedInput, RawSeries,
};
pub use resource::{Measurement, ResourceIdx, ResourceInstance, ResourceTrace};
pub use timeslice::{BoolGrid, MetricGrid, Nanos, TimesliceGrid, MILLIS};
