//! Execution and resource traces: what one workload run looked like.

pub mod execution;
pub mod resource;
pub mod timeslice;

pub use execution::{BlockingEvent, ExecutionTrace, InstanceId, PhaseInstance, TraceBuilder};
pub use resource::{Measurement, ResourceIdx, ResourceInstance, ResourceTrace};
pub use timeslice::{Nanos, TimesliceGrid, MILLIS};
