//! The resource trace: monitored utilization of every resource instance
//! (§III-C).
//!
//! A resource *instance* is a resource kind on a particular machine (or a
//! cluster-global resource). Consumable instances carry coarse-grained
//! [`Measurement`]s — each the *average* usage rate since the previous
//! measurement, exactly what periodic cluster monitoring reports. Blocking
//! resources do not appear here; their events live in the execution trace.

use serde::{Deserialize, Serialize};

use crate::error::Grade10Error;
use crate::trace::timeslice::Nanos;

/// Index of a resource instance within a [`ResourceTrace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceIdx(pub u32);

/// A concrete monitored resource: a kind, an optional machine scope, and a
/// capacity in the kind's units.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResourceInstance {
    /// Kind name; must match the resource model and attribution rules.
    pub kind: String,
    /// Machine this instance lives on; `None` for cluster-global resources.
    pub machine: Option<u16>,
    /// Capacity (cores, bytes/second, ...).
    pub capacity: f64,
}

impl ResourceInstance {
    /// `cpu@3`-style label.
    pub fn label(&self) -> String {
        match self.machine {
            Some(m) => format!("{}@{m}", self.kind),
            None => self.kind.clone(),
        }
    }
}

/// One monitoring measurement: average usage over `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Window start, nanoseconds.
    pub start: Nanos,
    /// Window end, nanoseconds (exclusive).
    pub end: Nanos,
    /// Average absolute usage over the window (same units as capacity).
    pub avg: f64,
}

/// All monitored resources of one execution, with their measurements.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ResourceTrace {
    instances: Vec<ResourceInstance>,
    measurements: Vec<Vec<Measurement>>,
}

impl ResourceTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource instance.
    ///
    /// Panics on a non-positive capacity; use
    /// [`try_add_resource`](Self::try_add_resource) for untrusted input.
    pub fn add_resource(&mut self, instance: ResourceInstance) -> ResourceIdx {
        assert!(instance.capacity > 0.0, "capacity must be positive");
        self.instances.push(instance);
        self.measurements.push(Vec::new());
        ResourceIdx(self.instances.len() as u32 - 1)
    }

    /// Fallible [`add_resource`](Self::add_resource): rejects non-finite or
    /// non-positive capacities with a classified error instead of panicking.
    pub fn try_add_resource(
        &mut self,
        instance: ResourceInstance,
    ) -> Result<ResourceIdx, Grade10Error> {
        if !(instance.capacity.is_finite() && instance.capacity > 0.0) {
            return Err(Grade10Error::InvalidMonitoring(format!(
                "resource '{}' has invalid capacity {}",
                instance.label(),
                instance.capacity
            )));
        }
        Ok(self.add_resource(instance))
    }

    /// Appends one measurement. Measurements must be added in time order
    /// and must not overlap.
    ///
    /// Panics on contract violations; use
    /// [`try_add_measurement`](Self::try_add_measurement) for untrusted
    /// input.
    pub fn add_measurement(&mut self, r: ResourceIdx, m: Measurement) {
        assert!(m.end > m.start, "empty measurement window");
        assert!(m.avg >= 0.0, "negative usage");
        let list = &mut self.measurements[r.0 as usize];
        if let Some(last) = list.last() {
            assert!(
                m.start >= last.end,
                "measurements out of order: {} < {}",
                m.start,
                last.end
            );
        }
        list.push(m);
    }

    /// Fallible [`add_measurement`](Self::add_measurement): rejects empty
    /// windows, non-finite or negative usage, and out-of-order windows with
    /// a classified [`Grade10Error`] instead of panicking — the entry point
    /// strict-mode ingestion uses on monitoring data from the outside world.
    pub fn try_add_measurement(
        &mut self,
        r: ResourceIdx,
        m: Measurement,
    ) -> Result<(), Grade10Error> {
        let label = |rt: &Self| rt.instances[r.0 as usize].label();
        if m.end <= m.start {
            return Err(Grade10Error::InvalidMonitoring(format!(
                "empty measurement window [{}, {}) on '{}'",
                m.start,
                m.end,
                label(self)
            )));
        }
        if !m.avg.is_finite() {
            return Err(Grade10Error::InvalidMonitoring(format!(
                "non-finite sample {} on '{}'",
                m.avg,
                label(self)
            )));
        }
        if m.avg < 0.0 {
            return Err(Grade10Error::InvalidMonitoring(format!(
                "negative sample {} on '{}'",
                m.avg,
                label(self)
            )));
        }
        if let Some(last) = self.measurements[r.0 as usize].last() {
            if m.start < last.end {
                return Err(Grade10Error::InvalidMonitoring(format!(
                    "measurements out of order on '{}': {} < {}",
                    label(self),
                    m.start,
                    last.end
                )));
            }
        }
        self.measurements[r.0 as usize].push(m);
        Ok(())
    }

    /// Appends a uniform series of measurements starting at `start`, one per
    /// `interval`, with the given average values.
    pub fn add_series(&mut self, r: ResourceIdx, start: Nanos, interval: Nanos, avgs: &[f64]) {
        let mut t = start;
        for &avg in avgs {
            self.add_measurement(
                r,
                Measurement {
                    start: t,
                    end: t + interval,
                    avg,
                },
            );
            t += interval;
        }
    }

    /// All resource instances.
    pub fn instances(&self) -> &[ResourceInstance] {
        &self.instances
    }

    /// One instance.
    pub fn instance(&self, r: ResourceIdx) -> &ResourceInstance {
        &self.instances[r.0 as usize]
    }

    /// Measurements of one instance.
    pub fn measurements(&self, r: ResourceIdx) -> &[Measurement] {
        &self.measurements[r.0 as usize]
    }

    /// Index of the instance with the given kind and machine.
    pub fn find(&self, kind: &str, machine: Option<u16>) -> Option<ResourceIdx> {
        self.instances
            .iter()
            .position(|i| i.kind == kind && i.machine == machine)
            .map(|i| ResourceIdx(i as u32))
    }

    /// Latest measurement end over all instances.
    pub fn end(&self) -> Nanos {
        self.measurements
            .iter()
            .filter_map(|m| m.last())
            .map(|m| m.end)
            .max()
            .unwrap_or(0)
    }

    /// Total measured consumption (usage × seconds) of one instance.
    pub fn total_consumption(&self, r: ResourceIdx) -> f64 {
        self.measurements(r)
            .iter()
            .map(|m| m.avg * (m.end - m.start) as f64 / 1e9)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::timeslice::MILLIS;

    #[test]
    fn add_and_query() {
        let mut rt = ResourceTrace::new();
        let cpu = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(0),
            capacity: 16.0,
        });
        rt.add_series(cpu, 0, 100 * MILLIS, &[4.0, 8.0, 2.0]);
        assert_eq!(rt.measurements(cpu).len(), 3);
        assert_eq!(rt.end(), 300 * MILLIS);
        assert!((rt.total_consumption(cpu) - (4.0 + 8.0 + 2.0) * 0.1).abs() < 1e-12);
        assert_eq!(rt.find("cpu", Some(0)), Some(cpu));
        assert_eq!(rt.find("cpu", Some(1)), None);
        assert_eq!(rt.instance(cpu).label(), "cpu@0");
    }

    #[test]
    fn global_resource_label() {
        let r = ResourceInstance {
            kind: "lock".into(),
            machine: None,
            capacity: 1.0,
        };
        assert_eq!(r.label(), "lock");
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn overlapping_measurements_rejected() {
        let mut rt = ResourceTrace::new();
        let r = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: None,
            capacity: 1.0,
        });
        rt.add_measurement(
            r,
            Measurement {
                start: 0,
                end: 100,
                avg: 0.5,
            },
        );
        rt.add_measurement(
            r,
            Measurement {
                start: 50,
                end: 150,
                avg: 0.5,
            },
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let mut rt = ResourceTrace::new();
        rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: None,
            capacity: 0.0,
        });
    }
}
