//! Degraded-input ingestion: repair of damaged log and monitoring streams
//! (robustness layer over §III-C's data collection).
//!
//! Real telemetry pipelines damage data routinely: clocks skew between
//! machines, shippers reorder and duplicate records, workers crash mid-run
//! and truncate their streams, monitoring exports windows that are missing,
//! NaN, or negative. Grade10's core pipeline assumes clean input; this
//! module decides what happens when the input is not clean.
//!
//! Two [`IngestMode`]s:
//!
//! * **Strict** — the stream must satisfy the full event and monitoring
//!   contracts; any violation is a classified [`Grade10Error`] (use
//!   [`Grade10Error::is_recoverable`] to decide whether re-ingesting
//!   leniently can help).
//! * **Lenient** — violations are *repaired*: events are sorted and
//!   deduplicated, missing end events are synthesized at stream end,
//!   negative durations are clamped, dropped ancestors are reconstructed
//!   from their descendants, invalid monitoring windows are dropped and
//!   interior gaps interpolated. Every repair is counted in an
//!   [`IngestReport`], which condenses into a 0–1
//!   [`quality score`](IngestReport::quality_score) so downstream consumers
//!   know how much to trust the characterization.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::error::Grade10Error;
use crate::model::execution::ExecutionModel;
use crate::parse::{build_execution_trace, RawEvent, RawEventKind, RawPath};
use crate::trace::execution::ExecutionTrace;
use crate::trace::resource::{Measurement, ResourceIdx, ResourceInstance, ResourceTrace};
use crate::trace::timeslice::Nanos;

/// How ingestion treats contract violations in its inputs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum IngestMode {
    /// Reject any violation with a classified [`Grade10Error`].
    #[default]
    Strict,
    /// Repair what can be repaired, count every repair, never fail on
    /// recoverable damage.
    Lenient,
}

/// Ingestion settings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestConfig {
    /// Strict or lenient treatment of contract violations.
    pub mode: IngestMode,
}

impl IngestConfig {
    /// Shorthand for `IngestConfig { mode: IngestMode::Lenient }`.
    pub fn lenient() -> Self {
        IngestConfig {
            mode: IngestMode::Lenient,
        }
    }
}

/// Structured account of everything lenient ingestion found and fixed.
///
/// All counters are zero for a clean stream, so a default report doubles as
/// the "nothing happened" report strict-mode paths carry.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestReport {
    /// Log records received.
    pub events_total: usize,
    /// Records that arrived behind an earlier timestamp and were re-sorted.
    pub out_of_order_fixed: usize,
    /// Exact duplicate records dropped.
    pub duplicates_dropped: usize,
    /// Re-starts of an already-open phase or block dropped.
    pub duplicate_starts_dropped: usize,
    /// Phase/block end events synthesized at stream end (crash truncation).
    pub missing_ends_synthesized: usize,
    /// End events with no matching start, dropped.
    pub unmatched_ends_dropped: usize,
    /// Phases whose end preceded their start (clock damage), clamped to
    /// zero duration.
    pub negative_durations_clamped: usize,
    /// Container phases reconstructed from surviving descendants after
    /// their own records were lost.
    pub ancestors_synthesized: usize,
    /// Monitoring windows received.
    pub monitoring_windows_total: usize,
    /// Non-finite or structurally broken monitoring windows dropped.
    pub monitoring_invalid: usize,
    /// Negative monitoring samples clamped to zero.
    pub monitoring_negatives_clamped: usize,
    /// Monitoring windows that arrived out of order or overlapping and were
    /// re-sorted or dropped.
    pub monitoring_out_of_order: usize,
    /// Monitoring windows quarantined because their duration or placement
    /// was implausible (orders of magnitude beyond the stream's typical
    /// window) — a single skewed timestamp must not inflate the timeslice
    /// grid.
    pub monitoring_quarantined: usize,
    /// Interior monitoring gaps filled by linear interpolation.
    pub monitoring_gaps_interpolated: usize,
    /// Timeslices whose consumption was *estimated* from demand because no
    /// monitoring covered them (filled in by the attribution stage when
    /// demand-fallback estimation is enabled).
    pub slices_estimated: usize,
    /// Total (resource × timeslice) cells the profile covers.
    pub slices_total: usize,
}

impl IngestReport {
    /// Number of log-event repairs of any kind.
    pub fn event_repairs(&self) -> usize {
        self.out_of_order_fixed
            + self.duplicates_dropped
            + self.duplicate_starts_dropped
            + self.missing_ends_synthesized
            + self.unmatched_ends_dropped
            + self.negative_durations_clamped
            + self.ancestors_synthesized
    }

    /// Number of monitoring repairs of any kind.
    pub fn monitoring_repairs(&self) -> usize {
        self.monitoring_invalid
            + self.monitoring_negatives_clamped
            + self.monitoring_out_of_order
            + self.monitoring_quarantined
            + self.monitoring_gaps_interpolated
    }

    /// True when nothing was repaired or estimated: the input satisfied the
    /// strict contract.
    pub fn is_clean(&self) -> bool {
        self.event_repairs() == 0 && self.monitoring_repairs() == 0 && self.slices_estimated == 0
    }

    /// Data-quality score in `[0, 1]`: 1.0 for pristine input, degrading
    /// with the fraction of damaged events and monitoring windows.
    ///
    /// The score is the mean of an event component and a monitoring
    /// component, each `1 - damaged/total` clamped to `[0, 1]`; estimated
    /// timeslices count as damaged monitoring (an estimated slice carries
    /// model-derived, not measured, consumption). Empty inputs score 1.0 —
    /// nothing claimed, nothing wrong.
    pub fn quality_score(&self) -> f64 {
        fn component(damaged: usize, total: usize) -> Option<f64> {
            if total == 0 {
                None
            } else {
                Some((1.0 - damaged as f64 / total as f64).clamp(0.0, 1.0))
            }
        }
        let event = component(self.event_repairs(), self.events_total);
        // Scale estimated slices to window units so the two damage kinds are
        // commensurable.
        let estimated_in_windows = (self.slices_estimated
            * self.monitoring_windows_total.max(1))
        .checked_div(self.slices_total)
        .unwrap_or(0);
        let monitoring_damaged = self.monitoring_repairs() + estimated_in_windows;
        let monitoring = component(monitoring_damaged, self.monitoring_windows_total);
        match (event, monitoring) {
            (Some(e), Some(m)) => (e + m) / 2.0,
            (Some(x), None) | (None, Some(x)) => x,
            (None, None) => 1.0,
        }
    }

    /// One human-readable line per non-zero counter, for report output.
    pub fn summary_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut line = |n: usize, what: &str| {
            if n > 0 {
                out.push(format!("{n} {what}"));
            }
        };
        line(self.out_of_order_fixed, "out-of-order events re-sorted");
        line(self.duplicates_dropped, "duplicate records dropped");
        line(self.duplicate_starts_dropped, "duplicate starts dropped");
        line(self.missing_ends_synthesized, "missing end events synthesized");
        line(self.unmatched_ends_dropped, "unmatched end events dropped");
        line(self.negative_durations_clamped, "negative durations clamped");
        line(self.ancestors_synthesized, "lost container phases reconstructed");
        line(self.monitoring_invalid, "invalid monitoring windows dropped");
        line(self.monitoring_negatives_clamped, "negative monitoring samples clamped");
        line(self.monitoring_out_of_order, "out-of-order monitoring windows fixed");
        line(self.monitoring_quarantined, "implausible monitoring windows quarantined");
        line(self.monitoring_gaps_interpolated, "monitoring gaps interpolated");
        line(self.slices_estimated, "timeslices estimated from demand");
        out
    }
}

/// One resource's monitoring stream as it arrives from the outside world:
/// windows may be unsorted, overlapping, gappy, NaN, or negative. Ingestion
/// turns a set of these into a validated [`ResourceTrace`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RawSeries {
    /// The resource the windows claim to measure.
    pub instance: ResourceInstance,
    /// Measurement windows, in arrival order.
    pub measurements: Vec<Measurement>,
}

impl RawSeries {
    /// Decomposes a [`ResourceTrace`] back into raw series, e.g. to re-run
    /// a deserialized trace (whose contents bypassed validation) through
    /// ingestion.
    pub fn from_trace(rt: &ResourceTrace) -> Vec<RawSeries> {
        rt.instances()
            .iter()
            .enumerate()
            .map(|(r, inst)| RawSeries {
                instance: inst.clone(),
                measurements: rt.measurements(ResourceIdx(r as u32)).to_vec(),
            })
            .collect()
    }
}

/// Everything ingestion produces: validated traces plus the account of what
/// it took to get them.
#[derive(Clone, Debug)]
pub struct IngestedInput {
    /// The execution trace built from the (possibly repaired) event stream.
    pub trace: ExecutionTrace,
    /// The resource trace built from the (possibly repaired) monitoring.
    pub resources: ResourceTrace,
    /// What was repaired along the way.
    pub report: IngestReport,
}

/// Ingests an event stream and monitoring streams together under one
/// config, producing both traces and a combined report.
pub fn ingest(
    model: &ExecutionModel,
    events: &[RawEvent],
    monitoring: &[RawSeries],
    cfg: &IngestConfig,
) -> Result<IngestedInput, Grade10Error> {
    let _span = crate::obs::span(crate::obs::Stage::Ingest);
    let mut report = IngestReport::default();
    let trace = ingest_events(model, events, cfg, &mut report)?;
    let resources = ingest_monitoring(monitoring, cfg, &mut report)?;
    Ok(IngestedInput {
        trace,
        resources,
        report,
    })
}

/// [`ingest`] variant that additionally returns the validated (strict) or
/// repaired (lenient) raw streams, in the exact shape the traces were
/// built from. The stage cache persists these streams as the serialized
/// ingest-stage boundary; replaying them through [`rebuild_ingested`]
/// reproduces the original [`IngestedInput`] exactly. Runs every check and
/// repair in the same order as [`ingest`], so error classification and
/// report counters are identical.
pub(crate) fn ingest_with_streams(
    model: &ExecutionModel,
    events: &[RawEvent],
    monitoring: &[RawSeries],
    cfg: &IngestConfig,
) -> Result<(IngestedInput, Vec<RawEvent>, Vec<RawSeries>), Grade10Error> {
    let _span = crate::obs::span(crate::obs::Stage::Ingest);
    let mut report = IngestReport::default();
    report.events_total += events.len();
    let repaired = match cfg.mode {
        IngestMode::Strict => {
            validate_event_stream(events)?;
            events.to_vec()
        }
        IngestMode::Lenient => repair_events(events, &mut report),
    };
    let trace = build_execution_trace(model, &repaired)?;
    let (resources, series) = ingest_monitoring_streams(monitoring, cfg, &mut report)?;
    Ok((
        IngestedInput {
            trace,
            resources,
            report,
        },
        repaired,
        series,
    ))
}

/// Rebuilds an [`IngestedInput`] from cached post-repair streams — the
/// inverse of [`ingest_with_streams`]. The event build still validates
/// against the *current* model (the cache key does not pin the model, and
/// a model mismatch must fail here exactly as it would on a cold run);
/// monitoring is re-added under the original mode's discipline, so a
/// lenient run's unchecked adds are replayed unchecked.
pub(crate) fn rebuild_ingested(
    model: &ExecutionModel,
    mode: IngestMode,
    events: &[RawEvent],
    series: Vec<RawSeries>,
    report: IngestReport,
) -> Result<IngestedInput, Grade10Error> {
    let _span = crate::obs::span(crate::obs::Stage::Ingest);
    let trace = build_execution_trace(model, events)?;
    let mut rt = ResourceTrace::new();
    for s in series {
        match mode {
            IngestMode::Strict => {
                let idx = rt.try_add_resource(s.instance)?;
                for m in s.measurements {
                    rt.try_add_measurement(idx, m)?;
                }
            }
            IngestMode::Lenient => {
                let idx = rt.add_resource(s.instance);
                for m in s.measurements {
                    rt.add_measurement(idx, m);
                }
            }
        }
    }
    Ok(IngestedInput {
        trace,
        resources: rt,
        report,
    })
}

/// Builds an execution trace from a raw event stream under the given mode.
///
/// Strict mode enforces the full stream contract — monotone arrival order,
/// no duplicate records, balanced starts and ends — and rejects violations
/// with a classified [`Grade10Error`]. Lenient mode first runs
/// [`repair_events`] and then builds from the repaired stream.
pub fn ingest_events(
    model: &ExecutionModel,
    events: &[RawEvent],
    cfg: &IngestConfig,
    report: &mut IngestReport,
) -> Result<ExecutionTrace, Grade10Error> {
    report.events_total += events.len();
    match cfg.mode {
        IngestMode::Strict => {
            validate_event_stream(events)?;
            build_execution_trace(model, events)
        }
        IngestMode::Lenient => {
            let repaired = repair_events(events, report);
            build_execution_trace(model, &repaired)
        }
    }
}

/// Strict stream-level checks build_execution_trace does not make itself:
/// records must arrive in time order (log streams are append-ordered; a
/// regression signals clock skew or shipper reordering) and phase records
/// must not repeat exactly (a repeat signals a duplicating shipper). Block
/// records are exempt from the duplicate check: a thread that blocks twice
/// for zero duration at the same instant legitimately emits identical
/// records.
pub fn validate_event_stream(events: &[RawEvent]) -> Result<(), Grade10Error> {
    for w in events.windows(2) {
        if w[1].time < w[0].time {
            return Err(Grade10Error::MalformedLog(format!(
                "events out of order: {} after {}",
                w[1].time, w[0].time
            )));
        }
    }
    let mut seen: HashSet<&RawEvent> = HashSet::with_capacity(events.len());
    for ev in events {
        let is_phase = matches!(
            ev.kind,
            RawEventKind::PhaseStart { .. } | RawEventKind::PhaseEnd { .. }
        );
        if is_phase && !seen.insert(ev) {
            return Err(Grade10Error::MalformedLog(format!(
                "duplicate record at t={} on machine {} thread {}",
                ev.time, ev.machine, ev.thread
            )));
        }
    }
    Ok(())
}

/// Repairs a damaged raw event stream into one that satisfies the strict
/// contract, counting every repair in `report`:
///
/// * records are sorted by time (out-of-order arrivals counted);
/// * exact duplicate phase records are dropped (block records are exempt,
///   as in the strict contract — repeated zero-length bursts are
///   legitimate, and duplicated block records surface as pairing damage);
/// * per phase path: extra starts are dropped, the earliest start wins, the
///   latest end wins, a missing end is synthesized at stream end, and an
///   end before the start is clamped to zero duration;
/// * end events with no start are dropped;
/// * container phases whose own records were lost are reconstructed
///   spanning their surviving descendants;
/// * per (machine, thread, resource): block starts and ends are re-paired
///   in time order, with the same synthesis/drop rules.
pub fn repair_events(events: &[RawEvent], report: &mut IngestReport) -> Vec<RawEvent> {
    repair_events_opts(events, true, report)
}

/// [`repair_events`] with ancestor synthesis switchable off. Supervised
/// per-machine ingestion repairs each machine's substream separately and
/// must not synthesize container phases per machine — a shared root would
/// be reconstructed once per unit, duplicating its start in the merged
/// stream. The supervisor repairs substreams with `synthesize_ancestors:
/// false` and runs one global pass over the merged survivors instead.
pub(crate) fn repair_events_opts(
    events: &[RawEvent],
    synthesize_ancestors: bool,
    report: &mut IngestReport,
) -> Vec<RawEvent> {
    // 1. Out-of-order count, then a stable sort by time.
    report.out_of_order_fixed += events
        .windows(2)
        .filter(|w| w[1].time < w[0].time)
        .count();
    let mut sorted: Vec<&RawEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.time);

    // 2. Exact duplicates — phase records only, mirroring the strict
    // contract: a thread legitimately emits identical block records when it
    // blocks twice for zero duration at one instant, so those are left for
    // rank pairing, which silently merges legitimate zero-length repeats
    // and counts genuinely duplicated block records as pairing damage.
    let mut seen: HashSet<&RawEvent> = HashSet::with_capacity(sorted.len());
    let mut unique: Vec<&RawEvent> = Vec::with_capacity(sorted.len());
    for ev in sorted {
        let is_phase = matches!(
            ev.kind,
            RawEventKind::PhaseStart { .. } | RawEventKind::PhaseEnd { .. }
        );
        if !is_phase || seen.insert(ev) {
            unique.push(ev);
        } else {
            report.duplicates_dropped += 1;
        }
    }
    let stream_end = unique.iter().map(|e| e.time).max().unwrap_or(0);

    // 3. Collect phase starts/ends per path, order-independently — clock
    // damage can place an end *before* its start in the sorted stream.
    #[derive(Default)]
    struct Phase {
        starts: Vec<(Nanos, u16, u16)>,
        ends: Vec<Nanos>,
    }
    let mut phases: HashMap<&RawPath, Phase> = HashMap::new();
    // Block starts/ends per (machine, thread, resource), in sorted order.
    #[derive(Default)]
    struct Burst {
        starts: Vec<Nanos>,
        ends: Vec<Nanos>,
    }
    let mut bursts: HashMap<(u16, u16, &str), Burst> = HashMap::new();

    for ev in &unique {
        match &ev.kind {
            RawEventKind::PhaseStart { path } => phases
                .entry(path)
                .or_default()
                .starts
                .push((ev.time, ev.machine, ev.thread)),
            RawEventKind::PhaseEnd { path } => {
                phases.entry(path).or_default().ends.push(ev.time)
            }
            RawEventKind::BlockStart { resource } => bursts
                .entry((ev.machine, ev.thread, resource.as_str()))
                .or_default()
                .starts
                .push(ev.time),
            RawEventKind::BlockEnd { resource } => bursts
                .entry((ev.machine, ev.thread, resource.as_str()))
                .or_default()
                .ends
                .push(ev.time),
        }
    }

    // 4. Close phases: earliest start wins, latest end wins; a missing end
    // is synthesized at stream end (crash truncation); an end preceding
    // the start is clamped to zero duration.
    let mut closed: Vec<(RawPath, Nanos, Nanos, u16, u16)> = Vec::new();
    for (path, ph) in phases {
        let Some(&(start, machine, thread)) = ph.starts.iter().min() else {
            // Ends with no start at all: nothing to anchor a phase on.
            report.unmatched_ends_dropped += ph.ends.len();
            continue;
        };
        report.duplicate_starts_dropped += ph.starts.len() - 1;
        let end = match ph.ends.iter().max() {
            Some(&e) => e,
            None => {
                report.missing_ends_synthesized += 1;
                stream_end.max(start)
            }
        };
        let end = if end < start {
            report.negative_durations_clamped += 1;
            start
        } else {
            end
        };
        closed.push((path.clone(), start, end, machine, thread));
    }
    // Path order, not hash order: the ancestor scan below credits a
    // synthesized parent to the first descendant seen, and the final
    // emission sort breaks timestamp ties by insertion order — both must
    // not depend on HashMap iteration.
    closed.sort_unstable();

    // 5. Pair blocks: k-th start with k-th end (bursts on one thread are
    // sequential, so rank pairing survives jitter); inverted pairs clamp
    // to zero length, excess ends drop, excess starts synthesize an end at
    // stream end. Overlapping repaired pairs are merged so the emitted
    // stream stays balanced under the strict parser's scan.
    let mut blocks: Vec<(u16, u16, &str, Nanos, Nanos)> = Vec::new();
    let mut bursts: Vec<_> = bursts.into_iter().collect();
    bursts.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    for ((machine, thread, resource), mut burst) in bursts {
        burst.starts.sort_unstable();
        burst.ends.sort_unstable();
        if burst.ends.len() > burst.starts.len() {
            report.unmatched_ends_dropped += burst.ends.len() - burst.starts.len();
            burst.ends.drain(..burst.ends.len() - burst.starts.len());
        }
        let mut pairs: Vec<(Nanos, Nanos)> = Vec::with_capacity(burst.starts.len());
        for (i, &start) in burst.starts.iter().enumerate() {
            let end = match burst.ends.get(i) {
                Some(&e) => e,
                None => {
                    report.missing_ends_synthesized += 1;
                    stream_end.max(start)
                }
            };
            let end = if end < start {
                report.negative_durations_clamped += 1;
                start
            } else {
                end
            };
            pairs.push((start, end));
        }
        pairs.sort_unstable();
        for (start, end) in pairs {
            match blocks.last_mut() {
                Some((m, t, r, _, prev_end))
                    if *m == machine && *t == thread && *r == resource && start <= *prev_end =>
                {
                    *prev_end = (*prev_end).max(end);
                }
                _ => blocks.push((machine, thread, resource, start, end)),
            }
        }
    }
    // Zero-length blocks carry no blocked time and would emit an End
    // before a Start at the same instant; drop them.
    blocks.retain(|&(.., start, end)| end > start);

    // 6. Reconstruct lost ancestors: every proper prefix of a surviving
    // path must itself be a phase; a missing one is synthesized spanning
    // the union of its surviving descendants.
    if synthesize_ancestors {
        let have: HashSet<RawPath> = closed.iter().map(|(p, ..)| p.clone()).collect();
        let mut missing: HashMap<RawPath, (Nanos, Nanos, u16, u16)> = HashMap::new();
        for (path, start, end, machine, thread) in &closed {
            for cut in 1..path.len() {
                let prefix = path[..cut].to_vec();
                if have.contains(&prefix) {
                    continue;
                }
                missing
                    .entry(prefix)
                    .and_modify(|(s, e, ..)| {
                        *s = (*s).min(*start);
                        *e = (*e).max(*end);
                    })
                    .or_insert((*start, *end, *machine, *thread));
            }
        }
        report.ancestors_synthesized += missing.len();
        closed.extend(
            missing
                .into_iter()
                .map(|(path, (s, e, m, t))| (path, s, e, m, t)),
        );
        // Restore path order over the appended ancestors (hash order).
        closed.sort_unstable();
    }

    // 7. Emit a balanced stream. Tie-breaking at equal timestamps matters
    // because the strict parser keeps arrival order among ties: parents
    // must start before children, block ends must precede block starts of
    // the next burst, and children must end before parents.
    let mut out: Vec<(Nanos, u8, usize, RawEvent)> = Vec::new();
    for (path, start, end, machine, thread) in closed {
        let depth = path.len();
        out.push((
            start,
            1,
            depth,
            RawEvent {
                time: start,
                machine,
                thread,
                kind: RawEventKind::PhaseStart { path: path.clone() },
            },
        ));
        out.push((
            end,
            3,
            usize::MAX - depth,
            RawEvent {
                time: end,
                machine,
                thread,
                kind: RawEventKind::PhaseEnd { path },
            },
        ));
    }
    for (machine, thread, resource, start, end) in blocks {
        out.push((
            start,
            2,
            0,
            RawEvent {
                time: start,
                machine,
                thread,
                kind: RawEventKind::BlockStart {
                    resource: resource.to_string(),
                },
            },
        ));
        out.push((
            end,
            0,
            0,
            RawEvent {
                time: end,
                machine,
                thread,
                kind: RawEventKind::BlockEnd {
                    resource: resource.to_string(),
                },
            },
        ));
    }
    out.sort_by_key(|a| (a.0, a.1, a.2));
    out.into_iter().map(|(_, _, _, ev)| ev).collect()
}

/// Builds a resource trace from raw monitoring streams under the given
/// mode.
///
/// Strict mode rejects any window violating the monitoring contract with a
/// classified [`Grade10Error::InvalidMonitoring`]. Lenient mode repairs:
/// non-finite windows are dropped (becoming gaps), negative samples are
/// clamped to zero, windows are re-sorted and overlaps dropped, and
/// interior gaps are filled by linear interpolation between the
/// neighboring windows. Leading/trailing gaps are left uncovered for the
/// attribution stage's demand fallback to estimate.
pub fn ingest_monitoring(
    series: &[RawSeries],
    cfg: &IngestConfig,
    report: &mut IngestReport,
) -> Result<ResourceTrace, Grade10Error> {
    Ok(ingest_monitoring_streams(series, cfg, report)?.0)
}

/// [`ingest_monitoring`] core that also returns the surviving post-repair
/// series, for the stage cache to persist as a serialized stage boundary.
pub(crate) fn ingest_monitoring_streams(
    series: &[RawSeries],
    cfg: &IngestConfig,
    report: &mut IngestReport,
) -> Result<(ResourceTrace, Vec<RawSeries>), Grade10Error> {
    report.monitoring_windows_total += series.iter().map(|s| s.measurements.len()).sum::<usize>();
    let mut rt = ResourceTrace::new();
    let mut kept: Vec<RawSeries> = Vec::with_capacity(series.len());
    match cfg.mode {
        IngestMode::Strict => {
            for s in series {
                let idx = rt.try_add_resource(s.instance.clone())?;
                for &m in &s.measurements {
                    rt.try_add_measurement(idx, m)?;
                }
                kept.push(s.clone());
            }
        }
        IngestMode::Lenient => {
            let bound = plausibility_bound(series);
            for s in series {
                if !(s.instance.capacity.is_finite() && s.instance.capacity > 0.0) {
                    // A resource with no believable capacity cannot be
                    // attributed against; drop the whole series.
                    report.monitoring_invalid += s.measurements.len();
                    continue;
                }
                let repaired = repair_series(&s.measurements, bound, report);
                let idx = rt.add_resource(s.instance.clone());
                for &m in &repaired {
                    rt.add_measurement(idx, m);
                }
                kept.push(RawSeries {
                    instance: s.instance.clone(),
                    measurements: repaired,
                });
            }
        }
    }
    Ok((rt, kept))
}

/// How many typical window durations a window (or a gap between windows)
/// may span before lenient repair quarantines it as timestamp damage. A
/// clock bomb multiplies a timestamp by orders of magnitude, so a generous
/// two-orders-of-magnitude margin never fires on organic jitter.
const QUARANTINE_FACTOR: Nanos = 100;

/// The cross-series sanity bound on window duration and placement:
/// `median valid window duration × QUARANTINE_FACTOR`, or `None` when no
/// series carries a structurally valid window.
///
/// The median is taken across *all* series, not per series: a bombed export
/// interval stretches every window of its series equally, so the series'
/// own statistics look self-consistent — only its peers reveal the damage.
pub(crate) fn plausibility_bound(series: &[RawSeries]) -> Option<Nanos> {
    let mut durations: Vec<Nanos> = series
        .iter()
        .flat_map(|s| s.measurements.iter())
        .filter(|m| m.avg.is_finite() && m.end > m.start)
        .map(|m| m.end - m.start)
        .collect();
    if durations.is_empty() {
        return None;
    }
    let mid = durations.len() / 2;
    let (_, median, _) = durations.select_nth_unstable(mid);
    (*median).checked_mul(QUARANTINE_FACTOR)
}

/// Lenient per-series window repair; see [`ingest_monitoring`]. `bound` is
/// the cross-series plausibility bound from [`plausibility_bound`]: windows
/// longer than it are quarantined, the series is cut at the first gap wider
/// than it (everything after a bombed timestamp is untrustworthy), and gaps
/// wider than it are never bridged by interpolation.
pub(crate) fn repair_series(
    measurements: &[Measurement],
    bound: Option<Nanos>,
    report: &mut IngestReport,
) -> Vec<Measurement> {
    // Drop structurally broken windows, clamp negatives, quarantine
    // implausibly long windows.
    let mut windows: Vec<Measurement> = Vec::with_capacity(measurements.len());
    for &m in measurements {
        if !m.avg.is_finite() || m.end <= m.start {
            report.monitoring_invalid += 1;
            continue;
        }
        if bound.is_some_and(|b| m.end - m.start > b) {
            report.monitoring_quarantined += 1;
            continue;
        }
        let mut m = m;
        if m.avg < 0.0 {
            report.monitoring_negatives_clamped += 1;
            m.avg = 0.0;
        }
        windows.push(m);
    }
    // Sort; count arrival-order violations.
    report.monitoring_out_of_order += windows
        .windows(2)
        .filter(|w| w[1].start < w[0].start)
        .count();
    windows.sort_by_key(|m| (m.start, m.end));
    // Drop overlapping windows (keep the earlier one).
    let mut kept: Vec<Measurement> = Vec::with_capacity(windows.len());
    for m in windows {
        match kept.last() {
            Some(last) if m.start < last.end => report.monitoring_out_of_order += 1,
            _ => kept.push(m),
        }
    }
    // Quarantine the tail past any implausibly wide gap: a window that sits
    // orders of magnitude after its predecessor got there via a damaged
    // timestamp, and keeping it would stretch the timeslice grid to match.
    if let Some(b) = bound {
        if let Some(cut) = kept
            .windows(2)
            .position(|w| w[1].start - w[0].end > b)
        {
            report.monitoring_quarantined += kept.len() - (cut + 1);
            kept.truncate(cut + 1);
        }
    }
    // Interpolate interior gaps: one synthetic window per gap, its level
    // the mean of its two neighbors.
    let mut out: Vec<Measurement> = Vec::with_capacity(kept.len());
    for m in kept {
        if let Some(prev) = out.last() {
            if m.start > prev.end {
                report.monitoring_gaps_interpolated += 1;
                let filler = Measurement {
                    start: prev.end,
                    end: m.start,
                    avg: 0.5 * (prev.avg + m.avg),
                };
                out.push(filler);
            }
        }
        out.push(m);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::execution::{ExecutionModelBuilder, Repeat};
    use crate::trace::timeslice::MILLIS;

    fn model() -> ExecutionModel {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let step = b.child(r, "step", Repeat::Sequential);
        let _ = b.child(step, "task", Repeat::Parallel);
        b.build()
    }

    fn path(segs: &[(&str, u32)]) -> RawPath {
        segs.iter().map(|(n, k)| (n.to_string(), *k)).collect()
    }

    fn ev(time: Nanos, kind: RawEventKind) -> RawEvent {
        RawEvent {
            time,
            machine: 0,
            thread: 0,
            kind,
        }
    }

    fn clean_events() -> Vec<RawEvent> {
        vec![
            ev(0, RawEventKind::PhaseStart { path: path(&[("job", 0)]) }),
            ev(
                0,
                RawEventKind::PhaseStart {
                    path: path(&[("job", 0), ("step", 0)]),
                },
            ),
            ev(
                10 * MILLIS,
                RawEventKind::PhaseEnd {
                    path: path(&[("job", 0), ("step", 0)]),
                },
            ),
            ev(10 * MILLIS, RawEventKind::PhaseEnd { path: path(&[("job", 0)]) }),
        ]
    }

    #[test]
    fn clean_stream_repairs_to_itself() {
        let events = clean_events();
        let mut report = IngestReport::default();
        let repaired = repair_events(&events, &mut report);
        assert_eq!(repaired, events);
        assert!(report.is_clean());
        assert_eq!(report.quality_score(), 1.0);
    }

    #[test]
    fn strict_rejects_out_of_order_and_duplicates() {
        let mut events = clean_events();
        events.swap(2, 3);
        // Same timestamps, so swapping alone is still monotone; shift one.
        events[2].time += 1;
        let err = validate_event_stream(&events).unwrap_err();
        assert!(matches!(err, Grade10Error::MalformedLog(_)));
        assert!(err.is_recoverable());

        let mut dup = clean_events();
        dup.insert(1, dup[0].clone());
        let err = validate_event_stream(&dup).unwrap_err();
        assert!(err.detail().contains("duplicate"), "{err}");
    }

    #[test]
    fn strict_allows_repeated_zero_length_blocks() {
        // A thread that blocks twice for zero duration at one instant emits
        // two identical start/end pairs — legitimate, not shipper damage.
        let mut events = clean_events();
        let t = 5 * MILLIS;
        for _ in 0..2 {
            events.insert(
                2,
                ev(
                    t,
                    RawEventKind::BlockEnd {
                        resource: "barrier".into(),
                    },
                ),
            );
            events.insert(
                2,
                ev(
                    t,
                    RawEventKind::BlockStart {
                        resource: "barrier".into(),
                    },
                ),
            );
        }
        assert!(validate_event_stream(&events).is_ok());
    }

    #[test]
    fn repair_sorts_and_dedups() {
        let mut events = clean_events();
        events.swap(0, 3); // ends before starts
        events.push(events[1].clone()); // exact duplicate
        let mut report = IngestReport::default();
        let repaired = repair_events(&events, &mut report);
        assert!(report.out_of_order_fixed >= 1);
        assert_eq!(report.duplicates_dropped, 1);
        let trace = build_execution_trace(&model(), &repaired).unwrap();
        assert_eq!(trace.instances().len(), 2);
    }

    #[test]
    fn repair_synthesizes_missing_end_at_stream_end() {
        let mut events = clean_events();
        events.remove(3); // job never ends
        let mut report = IngestReport::default();
        let repaired = repair_events(&events, &mut report);
        assert_eq!(report.missing_ends_synthesized, 1);
        let trace = build_execution_trace(&model(), &repaired).unwrap();
        let job = &trace.instances()[0];
        assert_eq!(job.end, 10 * MILLIS); // stream end
    }

    #[test]
    fn repair_drops_orphan_end_and_duplicate_start() {
        let mut events = clean_events();
        events.insert(
            1,
            ev(5, RawEventKind::PhaseStart { path: path(&[("job", 0)]) }),
        );
        events.push(ev(
            11 * MILLIS,
            RawEventKind::PhaseEnd {
                path: path(&[("job", 0), ("step", 1)]),
            },
        ));
        let mut report = IngestReport::default();
        let repaired = repair_events(&events, &mut report);
        assert_eq!(report.duplicate_starts_dropped, 1);
        assert_eq!(report.unmatched_ends_dropped, 1);
        let trace = build_execution_trace(&model(), &repaired).unwrap();
        assert_eq!(trace.instances().len(), 2);
        assert_eq!(trace.instances()[0].start, 0); // earliest start wins
    }

    #[test]
    fn repair_clamps_negative_duration() {
        let events = vec![
            ev(20, RawEventKind::PhaseStart { path: path(&[("job", 0)]) }),
            ev(5, RawEventKind::PhaseEnd { path: path(&[("job", 0)]) }),
        ];
        let mut report = IngestReport::default();
        let repaired = repair_events(&events, &mut report);
        assert_eq!(report.negative_durations_clamped, 1);
        let trace = build_execution_trace(&model(), &repaired).unwrap();
        assert_eq!(trace.instances()[0].start, trace.instances()[0].end);
    }

    #[test]
    fn repair_reconstructs_lost_ancestors() {
        let events = vec![
            // Only the innermost task survives; job and step were dropped.
            ev(
                2 * MILLIS,
                RawEventKind::PhaseStart {
                    path: path(&[("job", 0), ("step", 0), ("task", 1)]),
                },
            ),
            ev(
                8 * MILLIS,
                RawEventKind::PhaseEnd {
                    path: path(&[("job", 0), ("step", 0), ("task", 1)]),
                },
            ),
        ];
        let mut report = IngestReport::default();
        let repaired = repair_events(&events, &mut report);
        assert_eq!(report.ancestors_synthesized, 2);
        let trace = build_execution_trace(&model(), &repaired).unwrap();
        assert_eq!(trace.instances().len(), 3);
        // Ancestors span the surviving descendant.
        assert!(trace.instances().iter().all(|i| i.start == 2 * MILLIS));
        assert!(trace.instances().iter().all(|i| i.end == 8 * MILLIS));
    }

    #[test]
    fn repair_balances_blocks() {
        let events = vec![
            ev(0, RawEventKind::PhaseStart { path: path(&[("job", 0)]) }),
            ev(
                MILLIS,
                RawEventKind::BlockStart {
                    resource: "gc".into(),
                },
            ),
            // No BlockEnd: crashed mid-block. Also an orphan end:
            ev(
                2 * MILLIS,
                RawEventKind::BlockEnd {
                    resource: "msgq".into(),
                },
            ),
            ev(10 * MILLIS, RawEventKind::PhaseEnd { path: path(&[("job", 0)]) }),
        ];
        let mut report = IngestReport::default();
        let repaired = repair_events(&events, &mut report);
        assert_eq!(report.missing_ends_synthesized, 1);
        assert_eq!(report.unmatched_ends_dropped, 1);
        let trace = build_execution_trace(&model(), &repaired).unwrap();
        assert_eq!(trace.blocking().len(), 1);
        assert_eq!(trace.blocking()[0].end, 10 * MILLIS);
    }

    fn series(samples: &[f64]) -> RawSeries {
        let mut ms = Vec::new();
        for (i, &avg) in samples.iter().enumerate() {
            ms.push(Measurement {
                start: i as Nanos * 10 * MILLIS,
                end: (i as Nanos + 1) * 10 * MILLIS,
                avg,
            });
        }
        RawSeries {
            instance: ResourceInstance {
                kind: "cpu".into(),
                machine: Some(0),
                capacity: 4.0,
            },
            measurements: ms,
        }
    }

    #[test]
    fn strict_monitoring_rejects_nan_negative_and_overlap() {
        let cfg = IngestConfig::default();
        for bad in [f64::NAN, -1.0] {
            let mut report = IngestReport::default();
            let err = ingest_monitoring(&[series(&[1.0, bad])], &cfg, &mut report).unwrap_err();
            assert!(matches!(err, Grade10Error::InvalidMonitoring(_)), "{err}");
            assert!(err.is_recoverable());
        }
        let mut s = series(&[1.0, 2.0]);
        s.measurements.swap(0, 1);
        let mut report = IngestReport::default();
        let err = ingest_monitoring(&[s], &cfg, &mut report).unwrap_err();
        assert!(err.detail().contains("out of order"), "{err}");
    }

    #[test]
    fn lenient_monitoring_interpolates_interior_nan() {
        let cfg = IngestConfig::lenient();
        let mut report = IngestReport::default();
        let rt =
            ingest_monitoring(&[series(&[1.0, f64::NAN, 3.0])], &cfg, &mut report).unwrap();
        let idx = rt.find("cpu", Some(0)).unwrap();
        let ms = rt.measurements(idx);
        assert_eq!(ms.len(), 3);
        assert_eq!(report.monitoring_invalid, 1);
        assert_eq!(report.monitoring_gaps_interpolated, 1);
        // The gap window carries the neighbor mean.
        assert!((ms[1].avg - 2.0).abs() < 1e-12, "{}", ms[1].avg);
    }

    #[test]
    fn lenient_monitoring_clamps_negatives_and_leaves_edges() {
        let cfg = IngestConfig::lenient();
        let mut report = IngestReport::default();
        let rt = ingest_monitoring(
            &[series(&[f64::NAN, -2.0, 3.0, f64::NAN])],
            &cfg,
            &mut report,
        )
        .unwrap();
        let idx = rt.find("cpu", Some(0)).unwrap();
        let ms = rt.measurements(idx);
        // Edge NaNs become uncovered time, not synthetic windows.
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].avg, 0.0);
        assert_eq!(report.monitoring_negatives_clamped, 1);
        assert_eq!(report.monitoring_invalid, 2);
        assert_eq!(ms[0].start, 10 * MILLIS);
        assert_eq!(ms[1].end, 30 * MILLIS);
    }

    #[test]
    fn lenient_monitoring_drops_invalid_capacity_series() {
        let cfg = IngestConfig::lenient();
        let mut report = IngestReport::default();
        let mut s = series(&[1.0, 2.0]);
        s.instance.capacity = f64::NAN;
        let rt = ingest_monitoring(&[s], &cfg, &mut report).unwrap();
        assert!(rt.instances().is_empty());
        assert_eq!(report.monitoring_invalid, 2);
    }

    #[test]
    fn lenient_monitoring_quarantines_bombed_window() {
        // One window whose end timestamp was multiplied by a bomb: its
        // duration dwarfs the stream's typical 10ms window.
        let cfg = IngestConfig::lenient();
        let mut s = series(&[1.0, 2.0, 3.0, 4.0]);
        s.measurements[1].end = s.measurements[1].start + 10_000_000 * MILLIS;
        let mut report = IngestReport::default();
        let rt = ingest_monitoring(&[s], &cfg, &mut report).unwrap();
        assert_eq!(report.monitoring_quarantined, 1);
        let idx = rt.find("cpu", Some(0)).unwrap();
        // The bombed window is gone; its slot becomes an interpolated gap,
        // and the grid end stays at the organic 40ms.
        assert_eq!(rt.measurements(idx).len(), 4);
        assert_eq!(rt.end(), 40 * MILLIS);
        assert_eq!(report.monitoring_gaps_interpolated, 1);
    }

    #[test]
    fn lenient_monitoring_quarantines_bombed_interval_series() {
        // A whole series exported with a ×1000 interval looks internally
        // consistent; only the cross-series median reveals it.
        let cfg = IngestConfig::lenient();
        let normal_a = series(&[1.0, 2.0, 3.0]);
        let normal_b = series(&[0.5, 0.5, 0.5]);
        let mut bombed = series(&[1.0, 2.0, 3.0]);
        bombed.instance.kind = "network".into();
        for m in &mut bombed.measurements {
            m.start *= 1000;
            m.end *= 1000;
        }
        let mut report = IngestReport::default();
        let rt =
            ingest_monitoring(&[normal_a, normal_b, bombed], &cfg, &mut report).unwrap();
        assert_eq!(report.monitoring_quarantined, 3);
        let idx = rt.find("network", Some(0)).unwrap();
        assert!(rt.measurements(idx).is_empty());
        // The healthy series are untouched and the grid stays small.
        assert_eq!(rt.end(), 30 * MILLIS);
        assert!(!report.is_clean());
    }

    #[test]
    fn lenient_monitoring_cuts_tail_after_bombed_gap() {
        // One bombed *start* pushes a window (and everything after it) far
        // past the organic end of the stream; the tail is quarantined
        // rather than bridged by interpolation.
        let cfg = IngestConfig::lenient();
        let mut s = series(&[1.0, 2.0, 3.0, 4.0]);
        for m in &mut s.measurements[2..] {
            m.start += 10_000_000 * MILLIS;
            m.end += 10_000_000 * MILLIS;
        }
        let mut report = IngestReport::default();
        let rt = ingest_monitoring(&[s], &cfg, &mut report).unwrap();
        assert_eq!(report.monitoring_quarantined, 2);
        assert_eq!(report.monitoring_gaps_interpolated, 0);
        let idx = rt.find("cpu", Some(0)).unwrap();
        assert_eq!(rt.measurements(idx).len(), 2);
        assert_eq!(rt.end(), 20 * MILLIS);
    }

    #[test]
    fn clean_monitoring_is_not_quarantined() {
        let cfg = IngestConfig::lenient();
        let mut report = IngestReport::default();
        let rt = ingest_monitoring(&[series(&[1.0, 2.0, 3.0])], &cfg, &mut report).unwrap();
        assert_eq!(report.monitoring_quarantined, 0);
        assert!(report.is_clean());
        let idx = rt.find("cpu", Some(0)).unwrap();
        assert_eq!(rt.measurements(idx).len(), 3);
    }

    #[test]
    fn quality_score_degrades_with_damage() {
        let mut r = IngestReport {
            events_total: 100,
            monitoring_windows_total: 100,
            ..Default::default()
        };
        assert_eq!(r.quality_score(), 1.0);
        r.duplicates_dropped = 10;
        let one_fault = r.quality_score();
        assert!(one_fault < 1.0 && one_fault > 0.9, "{one_fault}");
        r.monitoring_invalid = 50;
        let two_faults = r.quality_score();
        assert!(two_faults < one_fault);
        assert!(r.quality_score() >= 0.0);
        assert!(!r.is_clean());
    }

    #[test]
    fn ingest_combines_events_and_monitoring() {
        let mut events = clean_events();
        events.remove(3);
        let out = ingest(
            &model(),
            &events,
            &[series(&[1.0, f64::NAN, 3.0])],
            &IngestConfig::lenient(),
        )
        .unwrap();
        assert_eq!(out.trace.instances().len(), 2);
        assert_eq!(out.resources.instances().len(), 1);
        assert_eq!(out.report.missing_ends_synthesized, 1);
        assert_eq!(out.report.monitoring_gaps_interpolated, 1);
        assert!(out.report.quality_score() < 1.0);
        // The same damaged input is rejected strictly, with recoverable
        // classification.
        let err = ingest(&model(), &events, &[], &IngestConfig::default()).unwrap_err();
        assert!(err.is_recoverable(), "{err}");
    }
}
