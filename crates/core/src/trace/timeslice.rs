//! Time discretization (§III-C).
//!
//! Grade10 discretizes time into fixed-length timeslices, assuming the system
//! is in steady state within a slice: resource consumption is constant and
//! phases start/end only at slice boundaries. The slice duration is the key
//! knob trading analysis granularity against data volume; the paper uses
//! 10 ms in practice.

use serde::{Deserialize, Serialize};

/// A point in time, nanoseconds since the start of the analyzed execution.
pub type Nanos = u64;

/// Nanoseconds per millisecond, handy for building test times.
pub const MILLIS: Nanos = 1_000_000;

/// A uniform grid of timeslices covering `[origin, origin + n * slice)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimesliceGrid {
    origin: Nanos,
    slice: Nanos,
    num_slices: usize,
}

impl TimesliceGrid {
    /// Builds a grid of `slice`-length slices from `origin` that covers
    /// through `end` (at least one slice).
    pub fn covering(origin: Nanos, end: Nanos, slice: Nanos) -> Self {
        assert!(slice > 0, "slice duration must be positive");
        assert!(end >= origin, "grid end before origin");
        let span = end - origin;
        let num_slices = (span.div_ceil(slice)).max(1) as usize;
        TimesliceGrid {
            origin,
            slice,
            num_slices,
        }
    }

    /// Slice duration in nanoseconds.
    pub fn slice_nanos(&self) -> Nanos {
        self.slice
    }

    /// Slice duration in seconds.
    pub fn slice_secs(&self) -> f64 {
        self.slice as f64 / 1e9
    }

    /// Number of slices.
    pub fn num_slices(&self) -> usize {
        self.num_slices
    }

    /// Grid origin.
    pub fn origin(&self) -> Nanos {
        self.origin
    }

    /// Index of the slice containing `t`, clamped to the grid.
    pub fn slice_of(&self, t: Nanos) -> usize {
        if t <= self.origin {
            return 0;
        }
        (((t - self.origin) / self.slice) as usize).min(self.num_slices - 1)
    }

    /// Nearest slice *boundary* index for `t` (0 ..= num_slices). Phase
    /// start/ends snap to boundaries per the steady-state assumption.
    pub fn snap(&self, t: Nanos) -> usize {
        if t <= self.origin {
            return 0;
        }
        let idx = ((t - self.origin + self.slice / 2) / self.slice) as usize;
        idx.min(self.num_slices)
    }

    /// `[start, end)` of slice `i` in nanoseconds.
    pub fn bounds(&self, i: usize) -> (Nanos, Nanos) {
        assert!(i < self.num_slices, "slice {i} out of range");
        let s = self.origin + self.slice * i as Nanos;
        (s, s + self.slice)
    }

    /// Fraction of slice `i` overlapped by the interval `[a, b)`.
    pub fn overlap_fraction(&self, i: usize, a: Nanos, b: Nanos) -> f64 {
        let (s, e) = self.bounds(i);
        let lo = a.max(s);
        let hi = b.min(e);
        if hi <= lo {
            0.0
        } else {
            (hi - lo) as f64 / self.slice as f64
        }
    }

    /// The slice-index range `[first, last)` a `[a, b)` interval overlaps,
    /// clamped to the grid. Empty range if the interval is empty.
    pub fn slice_range(&self, a: Nanos, b: Nanos) -> (usize, usize) {
        if b <= a {
            return (0, 0);
        }
        let first = self.slice_of(a);
        let last = if b <= self.origin {
            0
        } else {
            ((b - self.origin).div_ceil(self.slice) as usize).min(self.num_slices)
        };
        (first, last.max(first))
    }
}

/// A dense per-metric matrix over the timeslice grid: `rows × num_slices`
/// `f64` cells in **one contiguous buffer**, row-major. This is the
/// struct-of-arrays layout the columnar attribution core computes in: each
/// metric (consumption, exact demand, variable demand, unattributed) is one
/// `MetricGrid` whose row index is the resource (or phase) and whose rows
/// are contiguous `&[f64]` slices, so the per-slice kernels (`waterfill`,
/// upsampling, attribution) run as tight branch-light loops with no pointer
/// chasing between slices of the same metric.
///
/// `grid[r]` indexes a whole row as `&[f64]`, so consumers written against
/// the historical `Vec<Vec<f64>>` layout (`grid[r][s]`, `grid[r].iter()`)
/// compile unchanged. `Debug` renders exactly like the nested layout
/// (`[[a, b], [c, d]]`): determinism suites and goldens that dump profiles
/// byte-compare across the layout migration.
#[derive(Clone, PartialEq)]
pub struct MetricGrid {
    data: Vec<f64>,
    num_slices: usize,
}

impl MetricGrid {
    /// An all-zero matrix of `rows × num_slices` cells.
    pub fn zeros(rows: usize, num_slices: usize) -> Self {
        MetricGrid {
            data: vec![0.0; rows * num_slices],
            num_slices,
        }
    }

    /// A matrix with no rows (the empty-profile fallback).
    pub fn empty() -> Self {
        MetricGrid {
            data: Vec::new(),
            num_slices: 0,
        }
    }

    /// Converts the historical nested layout; every row must have the same
    /// length.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let num_slices = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * num_slices);
        for row in rows {
            assert_eq!(row.len(), num_slices, "ragged rows in MetricGrid");
            data.extend_from_slice(&row);
        }
        MetricGrid { data, num_slices }
    }

    /// Rebuilds a grid from its flat row-major buffer — the inverse of
    /// [`as_flat`](Self::as_flat), used by the stage-cache codec to
    /// round-trip profiles bit-exactly. `data.len()` must be a multiple of
    /// `num_slices` (or both empty).
    pub(crate) fn from_flat(data: Vec<f64>, num_slices: usize) -> Self {
        assert!(
            num_slices > 0 || data.is_empty(),
            "non-empty MetricGrid needs a slice count"
        );
        assert_eq!(
            data.len() % num_slices.max(1),
            0,
            "flat MetricGrid buffer must be a whole number of rows"
        );
        MetricGrid { data, num_slices }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.data.len().checked_div(self.num_slices).unwrap_or(0)
    }

    /// Number of slices (columns) per row.
    pub fn num_slices(&self) -> usize {
        self.num_slices
    }

    /// One row as a contiguous slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.num_slices..(r + 1) * self.num_slices]
    }

    /// One row as a mutable contiguous slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.num_slices..(r + 1) * self.num_slices]
    }

    /// Iterates rows in order.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.num_slices.max(1)).take(self.num_rows())
    }

    /// Mutable row iterator (disjoint rows, suitable for fan-out).
    pub fn rows_mut(&mut self) -> impl Iterator<Item = &mut [f64]> {
        let ns = self.num_slices.max(1);
        let n = self.num_rows();
        self.data.chunks_exact_mut(ns).take(n)
    }

    /// Appends the rows of `other` (row-axis concatenation, used when
    /// merging per-machine profiles). Slice counts must agree unless one
    /// side has no rows.
    pub fn extend_rows(&mut self, other: MetricGrid) {
        if other.num_rows() == 0 {
            return;
        }
        if self.num_rows() == 0 {
            *self = other;
            return;
        }
        assert_eq!(
            self.num_slices, other.num_slices,
            "merged MetricGrids must share a slice count"
        );
        self.data.extend_from_slice(&other.data);
    }

    /// The whole contiguous backing buffer, row-major.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }
}

impl std::ops::Index<usize> for MetricGrid {
    type Output = [f64];
    fn index(&self, r: usize) -> &[f64] {
        self.row(r)
    }
}

impl std::ops::IndexMut<usize> for MetricGrid {
    fn index_mut(&mut self, r: usize) -> &mut [f64] {
        self.row_mut(r)
    }
}

impl std::fmt::Debug for MetricGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.rows()).finish()
    }
}

/// A dense `rows × num_slices` flag matrix in one contiguous buffer — the
/// boolean companion of [`MetricGrid`], used for the per-cell "consumption
/// is an estimate" flags. Same indexing and `Debug` contract.
#[derive(Clone, PartialEq, Eq)]
pub struct BoolGrid {
    data: Vec<bool>,
    num_slices: usize,
}

impl BoolGrid {
    /// An all-false matrix of `rows × num_slices` cells.
    pub fn falses(rows: usize, num_slices: usize) -> Self {
        BoolGrid {
            data: vec![false; rows * num_slices],
            num_slices,
        }
    }

    /// A matrix with no rows.
    pub fn empty() -> Self {
        BoolGrid {
            data: Vec::new(),
            num_slices: 0,
        }
    }

    /// Rebuilds a flag grid from its flat row-major buffer (stage-cache
    /// codec inverse of [`as_flat`](Self::as_flat)).
    pub(crate) fn from_flat(data: Vec<bool>, num_slices: usize) -> Self {
        assert!(
            num_slices > 0 || data.is_empty(),
            "non-empty BoolGrid needs a slice count"
        );
        assert_eq!(
            data.len() % num_slices.max(1),
            0,
            "flat BoolGrid buffer must be a whole number of rows"
        );
        BoolGrid { data, num_slices }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.data.len().checked_div(self.num_slices).unwrap_or(0)
    }

    /// Number of slices (columns) per row.
    pub fn num_slices(&self) -> usize {
        self.num_slices
    }

    /// One row as a contiguous slice.
    pub fn row(&self, r: usize) -> &[bool] {
        &self.data[r * self.num_slices..(r + 1) * self.num_slices]
    }

    /// One row as a mutable contiguous slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [bool] {
        &mut self.data[r * self.num_slices..(r + 1) * self.num_slices]
    }

    /// Iterates rows in order.
    pub fn rows(&self) -> impl Iterator<Item = &[bool]> {
        self.data.chunks_exact(self.num_slices.max(1)).take(self.num_rows())
    }

    /// Number of `true` cells.
    pub fn count_set(&self) -> usize {
        self.data.iter().filter(|&&b| b).count()
    }

    /// The whole contiguous backing buffer, row-major.
    pub(crate) fn as_flat(&self) -> &[bool] {
        &self.data
    }

    /// Appends the rows of `other` (row-axis concatenation).
    pub fn extend_rows(&mut self, other: BoolGrid) {
        if other.num_rows() == 0 {
            return;
        }
        if self.num_rows() == 0 {
            *self = other;
            return;
        }
        assert_eq!(
            self.num_slices, other.num_slices,
            "merged BoolGrids must share a slice count"
        );
        self.data.extend_from_slice(&other.data);
    }
}

impl std::ops::Index<usize> for BoolGrid {
    type Output = [bool];
    fn index(&self, r: usize) -> &[bool] {
        self.row(r)
    }
}

impl std::ops::IndexMut<usize> for BoolGrid {
    fn index_mut(&mut self, r: usize) -> &mut [bool] {
        self.row_mut(r)
    }
}

impl std::fmt::Debug for BoolGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.rows()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_100ms_10ms() -> TimesliceGrid {
        TimesliceGrid::covering(0, 100 * MILLIS, 10 * MILLIS)
    }

    #[test]
    fn covering_counts_slices() {
        let g = grid_100ms_10ms();
        assert_eq!(g.num_slices(), 10);
        // Non-multiple span rounds up.
        let g2 = TimesliceGrid::covering(0, 95 * MILLIS, 10 * MILLIS);
        assert_eq!(g2.num_slices(), 10);
        // Degenerate span still has a slice.
        let g3 = TimesliceGrid::covering(5, 5, 10);
        assert_eq!(g3.num_slices(), 1);
    }

    #[test]
    fn slice_of_and_bounds() {
        let g = grid_100ms_10ms();
        assert_eq!(g.slice_of(0), 0);
        assert_eq!(g.slice_of(10 * MILLIS), 1);
        assert_eq!(g.slice_of(99 * MILLIS), 9);
        assert_eq!(g.slice_of(1000 * MILLIS), 9); // clamped
        assert_eq!(g.bounds(3), (30 * MILLIS, 40 * MILLIS));
    }

    #[test]
    fn snap_rounds_to_nearest_boundary() {
        let g = grid_100ms_10ms();
        assert_eq!(g.snap(14 * MILLIS), 1);
        assert_eq!(g.snap(15 * MILLIS), 2);
        assert_eq!(g.snap(16 * MILLIS), 2);
        assert_eq!(g.snap(100 * MILLIS), 10);
        assert_eq!(g.snap(9999 * MILLIS), 10); // clamped to boundary count
    }

    #[test]
    fn overlap_fraction_partial() {
        let g = grid_100ms_10ms();
        assert_eq!(g.overlap_fraction(0, 0, 10 * MILLIS), 1.0);
        assert_eq!(g.overlap_fraction(0, 5 * MILLIS, 20 * MILLIS), 0.5);
        assert_eq!(g.overlap_fraction(1, 5 * MILLIS, 12 * MILLIS), 0.2);
        assert_eq!(g.overlap_fraction(5, 0, 10 * MILLIS), 0.0);
    }

    #[test]
    fn slice_range_clamps() {
        let g = grid_100ms_10ms();
        assert_eq!(g.slice_range(0, 30 * MILLIS), (0, 3));
        assert_eq!(g.slice_range(25 * MILLIS, 45 * MILLIS), (2, 5));
        assert_eq!(g.slice_range(95 * MILLIS, 500 * MILLIS), (9, 10));
        assert_eq!(g.slice_range(50 * MILLIS, 50 * MILLIS), (0, 0));
    }

    #[test]
    fn metric_grid_debug_matches_nested_layout() {
        let nested = vec![vec![1.0, 2.5], vec![0.0, -3.0]];
        let grid = MetricGrid::from_rows(nested.clone());
        assert_eq!(format!("{grid:?}"), format!("{nested:?}"));
        assert_eq!(format!("{:?}", MetricGrid::empty()), "[]");
        let empty_rows: Vec<Vec<f64>> = Vec::new();
        assert_eq!(format!("{:?}", MetricGrid::empty()), format!("{empty_rows:?}"));
    }

    #[test]
    fn metric_grid_indexing_and_rows() {
        let mut g = MetricGrid::zeros(3, 4);
        g[1][2] = 7.0;
        assert_eq!(g.num_rows(), 3);
        assert_eq!(g.num_slices(), 4);
        assert_eq!(g.row(1), &[0.0, 0.0, 7.0, 0.0]);
        assert_eq!(g.rows().count(), 3);
        assert_eq!(g.as_flat().len(), 12);
        assert_eq!(g.as_flat()[6], 7.0);
    }

    #[test]
    fn metric_grid_extend_rows_concatenates() {
        let mut a = MetricGrid::from_rows(vec![vec![1.0, 2.0]]);
        a.extend_rows(MetricGrid::from_rows(vec![vec![3.0, 4.0]]));
        assert_eq!(a.num_rows(), 2);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        // Extending an empty grid adopts the other's shape.
        let mut e = MetricGrid::empty();
        e.extend_rows(a.clone());
        assert_eq!(e, a);
        a.extend_rows(MetricGrid::empty());
        assert_eq!(a.num_rows(), 2);
    }

    #[test]
    fn bool_grid_counts_and_debug() {
        let mut b = BoolGrid::falses(2, 3);
        b[0][1] = true;
        b[1][2] = true;
        assert_eq!(b.count_set(), 2);
        let nested = vec![vec![false, true, false], vec![false, false, true]];
        assert_eq!(format!("{b:?}"), format!("{nested:?}"));
    }

    #[test]
    fn nonzero_origin() {
        let g = TimesliceGrid::covering(100 * MILLIS, 200 * MILLIS, 10 * MILLIS);
        assert_eq!(g.num_slices(), 10);
        assert_eq!(g.slice_of(105 * MILLIS), 0);
        assert_eq!(g.slice_of(50 * MILLIS), 0); // clamped below origin
        assert_eq!(g.bounds(0).0, 100 * MILLIS);
    }
}
