//! Time discretization (§III-C).
//!
//! Grade10 discretizes time into fixed-length timeslices, assuming the system
//! is in steady state within a slice: resource consumption is constant and
//! phases start/end only at slice boundaries. The slice duration is the key
//! knob trading analysis granularity against data volume; the paper uses
//! 10 ms in practice.

use serde::{Deserialize, Serialize};

/// A point in time, nanoseconds since the start of the analyzed execution.
pub type Nanos = u64;

/// Nanoseconds per millisecond, handy for building test times.
pub const MILLIS: Nanos = 1_000_000;

/// A uniform grid of timeslices covering `[origin, origin + n * slice)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimesliceGrid {
    origin: Nanos,
    slice: Nanos,
    num_slices: usize,
}

impl TimesliceGrid {
    /// Builds a grid of `slice`-length slices from `origin` that covers
    /// through `end` (at least one slice).
    pub fn covering(origin: Nanos, end: Nanos, slice: Nanos) -> Self {
        assert!(slice > 0, "slice duration must be positive");
        assert!(end >= origin, "grid end before origin");
        let span = end - origin;
        let num_slices = (span.div_ceil(slice)).max(1) as usize;
        TimesliceGrid {
            origin,
            slice,
            num_slices,
        }
    }

    /// Slice duration in nanoseconds.
    pub fn slice_nanos(&self) -> Nanos {
        self.slice
    }

    /// Slice duration in seconds.
    pub fn slice_secs(&self) -> f64 {
        self.slice as f64 / 1e9
    }

    /// Number of slices.
    pub fn num_slices(&self) -> usize {
        self.num_slices
    }

    /// Grid origin.
    pub fn origin(&self) -> Nanos {
        self.origin
    }

    /// Index of the slice containing `t`, clamped to the grid.
    pub fn slice_of(&self, t: Nanos) -> usize {
        if t <= self.origin {
            return 0;
        }
        (((t - self.origin) / self.slice) as usize).min(self.num_slices - 1)
    }

    /// Nearest slice *boundary* index for `t` (0 ..= num_slices). Phase
    /// start/ends snap to boundaries per the steady-state assumption.
    pub fn snap(&self, t: Nanos) -> usize {
        if t <= self.origin {
            return 0;
        }
        let idx = ((t - self.origin + self.slice / 2) / self.slice) as usize;
        idx.min(self.num_slices)
    }

    /// `[start, end)` of slice `i` in nanoseconds.
    pub fn bounds(&self, i: usize) -> (Nanos, Nanos) {
        assert!(i < self.num_slices, "slice {i} out of range");
        let s = self.origin + self.slice * i as Nanos;
        (s, s + self.slice)
    }

    /// Fraction of slice `i` overlapped by the interval `[a, b)`.
    pub fn overlap_fraction(&self, i: usize, a: Nanos, b: Nanos) -> f64 {
        let (s, e) = self.bounds(i);
        let lo = a.max(s);
        let hi = b.min(e);
        if hi <= lo {
            0.0
        } else {
            (hi - lo) as f64 / self.slice as f64
        }
    }

    /// The slice-index range `[first, last)` a `[a, b)` interval overlaps,
    /// clamped to the grid. Empty range if the interval is empty.
    pub fn slice_range(&self, a: Nanos, b: Nanos) -> (usize, usize) {
        if b <= a {
            return (0, 0);
        }
        let first = self.slice_of(a);
        let last = if b <= self.origin {
            0
        } else {
            ((b - self.origin).div_ceil(self.slice) as usize).min(self.num_slices)
        };
        (first, last.max(first))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_100ms_10ms() -> TimesliceGrid {
        TimesliceGrid::covering(0, 100 * MILLIS, 10 * MILLIS)
    }

    #[test]
    fn covering_counts_slices() {
        let g = grid_100ms_10ms();
        assert_eq!(g.num_slices(), 10);
        // Non-multiple span rounds up.
        let g2 = TimesliceGrid::covering(0, 95 * MILLIS, 10 * MILLIS);
        assert_eq!(g2.num_slices(), 10);
        // Degenerate span still has a slice.
        let g3 = TimesliceGrid::covering(5, 5, 10);
        assert_eq!(g3.num_slices(), 1);
    }

    #[test]
    fn slice_of_and_bounds() {
        let g = grid_100ms_10ms();
        assert_eq!(g.slice_of(0), 0);
        assert_eq!(g.slice_of(10 * MILLIS), 1);
        assert_eq!(g.slice_of(99 * MILLIS), 9);
        assert_eq!(g.slice_of(1000 * MILLIS), 9); // clamped
        assert_eq!(g.bounds(3), (30 * MILLIS, 40 * MILLIS));
    }

    #[test]
    fn snap_rounds_to_nearest_boundary() {
        let g = grid_100ms_10ms();
        assert_eq!(g.snap(14 * MILLIS), 1);
        assert_eq!(g.snap(15 * MILLIS), 2);
        assert_eq!(g.snap(16 * MILLIS), 2);
        assert_eq!(g.snap(100 * MILLIS), 10);
        assert_eq!(g.snap(9999 * MILLIS), 10); // clamped to boundary count
    }

    #[test]
    fn overlap_fraction_partial() {
        let g = grid_100ms_10ms();
        assert_eq!(g.overlap_fraction(0, 0, 10 * MILLIS), 1.0);
        assert_eq!(g.overlap_fraction(0, 5 * MILLIS, 20 * MILLIS), 0.5);
        assert_eq!(g.overlap_fraction(1, 5 * MILLIS, 12 * MILLIS), 0.2);
        assert_eq!(g.overlap_fraction(5, 0, 10 * MILLIS), 0.0);
    }

    #[test]
    fn slice_range_clamps() {
        let g = grid_100ms_10ms();
        assert_eq!(g.slice_range(0, 30 * MILLIS), (0, 3));
        assert_eq!(g.slice_range(25 * MILLIS, 45 * MILLIS), (2, 5));
        assert_eq!(g.slice_range(95 * MILLIS, 500 * MILLIS), (9, 10));
        assert_eq!(g.slice_range(50 * MILLIS, 50 * MILLIS), (0, 0));
    }

    #[test]
    fn nonzero_origin() {
        let g = TimesliceGrid::covering(100 * MILLIS, 200 * MILLIS, 10 * MILLIS);
        assert_eq!(g.num_slices(), 10);
        assert_eq!(g.slice_of(105 * MILLIS), 0);
        assert_eq!(g.slice_of(50 * MILLIS), 0); // clamped below origin
        assert_eq!(g.bounds(0).0, 100 * MILLIS);
    }
}
