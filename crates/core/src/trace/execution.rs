//! The execution trace: phase instances and blocking events of one workload
//! execution (§III-C).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::Grade10Error;
use crate::model::execution::{ExecutionModel, PhaseTypeId};
use crate::trace::timeslice::Nanos;

/// Index of a phase instance within an [`ExecutionTrace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceId(pub u32);

/// One executed phase: an instantiation of a phase type with concrete start
/// and end times, optionally pinned to a machine and thread.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseInstance {
    /// This instance's id (its index in the trace).
    pub id: InstanceId,
    /// The phase type being instantiated.
    pub type_id: PhaseTypeId,
    /// Enclosing phase instance (`None` for the root).
    pub parent: Option<InstanceId>,
    /// Instance key distinguishing repeated instances under one parent
    /// (superstep number, thread index, ...).
    pub key: u32,
    /// Start time, nanoseconds.
    pub start: Nanos,
    /// End time, nanoseconds (exclusive).
    pub end: Nanos,
    /// Machine the phase ran on, when pinned.
    pub machine: Option<u16>,
    /// Machine-local thread, when pinned.
    pub thread: Option<u16>,
}

impl PhaseInstance {
    /// Duration in nanoseconds.
    pub fn duration(&self) -> Nanos {
        self.end - self.start
    }
}

/// A period during which a phase was halted by a blocking resource.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BlockingEvent {
    /// Blocking resource kind name ("gc", "msgq", "barrier", ...).
    pub resource: String,
    /// The phase instance that was blocked.
    pub instance: InstanceId,
    /// Interval start, nanoseconds.
    pub start: Nanos,
    /// Interval end, nanoseconds (exclusive).
    pub end: Nanos,
}

/// The full execution trace of one workload run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExecutionTrace {
    instances: Vec<PhaseInstance>,
    blocking: Vec<BlockingEvent>,
    children: Vec<Vec<InstanceId>>,
    /// Blocking events per instance (indices into `blocking`).
    blocking_by_instance: Vec<Vec<u32>>,
}

impl ExecutionTrace {
    /// Assembles a trace from raw parts, building the child/blocking
    /// indices. Validates parent references and time ordering.
    pub fn from_parts(
        instances: Vec<PhaseInstance>,
        blocking: Vec<BlockingEvent>,
    ) -> Result<Self, Grade10Error> {
        let n = instances.len();
        let mut children = vec![Vec::new(); n];
        for inst in &instances {
            if inst.end < inst.start {
                return Err(Grade10Error::InvalidTrace(format!(
                    "instance {:?} ends ({}) before it starts ({})",
                    inst.id, inst.end, inst.start
                )));
            }
            if let Some(p) = inst.parent {
                if p.0 as usize >= n {
                    return Err(Grade10Error::InvalidTrace(format!(
                        "instance {:?} has unknown parent {:?}",
                        inst.id, p
                    )));
                }
                children[p.0 as usize].push(inst.id);
            }
        }
        let mut blocking_by_instance = vec![Vec::new(); n];
        for (i, ev) in blocking.iter().enumerate() {
            if ev.instance.0 as usize >= n {
                return Err(Grade10Error::InvalidTrace(format!(
                    "blocking event {i} names unknown instance"
                )));
            }
            if ev.end < ev.start {
                return Err(Grade10Error::InvalidTrace(format!(
                    "blocking event {i} ends before it starts"
                )));
            }
            blocking_by_instance[ev.instance.0 as usize].push(i as u32);
        }
        Ok(ExecutionTrace {
            instances,
            blocking,
            children,
            blocking_by_instance,
        })
    }

    /// All instances.
    pub fn instances(&self) -> &[PhaseInstance] {
        &self.instances
    }

    /// One instance by id.
    pub fn instance(&self, id: InstanceId) -> &PhaseInstance {
        &self.instances[id.0 as usize]
    }

    /// Children of an instance.
    pub fn children_of(&self, id: InstanceId) -> &[InstanceId] {
        &self.children[id.0 as usize]
    }

    /// True if the instance has no children in the trace. Leaf instances
    /// carry resource demand; containers aggregate.
    pub fn is_leaf(&self, id: InstanceId) -> bool {
        self.children[id.0 as usize].is_empty()
    }

    /// All leaf instances.
    pub fn leaves(&self) -> impl Iterator<Item = &PhaseInstance> {
        self.instances.iter().filter(|i| self.is_leaf(i.id))
    }

    /// All instances of one phase type.
    pub fn instances_of_type(
        &self,
        type_id: PhaseTypeId,
    ) -> impl Iterator<Item = &PhaseInstance> {
        self.instances.iter().filter(move |i| i.type_id == type_id)
    }

    /// All blocking events.
    pub fn blocking(&self) -> &[BlockingEvent] {
        &self.blocking
    }

    /// Blocking events affecting one instance.
    pub fn blocking_of(&self, id: InstanceId) -> impl Iterator<Item = &BlockingEvent> {
        self.blocking_by_instance[id.0 as usize]
            .iter()
            .map(move |&i| &self.blocking[i as usize])
    }

    /// Latest end time over all instances (0 for an empty trace).
    pub fn makespan_end(&self) -> Nanos {
        self.instances.iter().map(|i| i.end).max().unwrap_or(0)
    }

    /// Earliest start time over all instances.
    pub fn origin(&self) -> Nanos {
        self.instances.iter().map(|i| i.start).min().unwrap_or(0)
    }

    /// The ancestor of `id` (possibly itself) with the given type.
    pub fn ancestor_of_type(
        &self,
        id: InstanceId,
        type_id: PhaseTypeId,
    ) -> Option<InstanceId> {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if self.instance(c).type_id == type_id {
                return Some(c);
            }
            cur = self.instance(c).parent;
        }
        None
    }

    /// Human-readable path of an instance, using `model` for names:
    /// `job.superstep[3].worker[2].compute`.
    pub fn instance_path(&self, model: &ExecutionModel, id: InstanceId) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let inst = self.instance(c);
            let name = model.name(inst.type_id);
            if inst.key == 0 {
                parts.push(name.to_string());
            } else {
                parts.push(format!("{name}[{}]", inst.key));
            }
            cur = inst.parent;
        }
        parts.reverse();
        parts.join(".")
    }
}

/// Builds an [`ExecutionTrace`] from phases identified by hierarchical name
/// paths, resolving phase types against an [`ExecutionModel`].
pub struct TraceBuilder<'m> {
    model: &'m ExecutionModel,
    instances: Vec<PhaseInstance>,
    blocking: Vec<BlockingEvent>,
    by_path: HashMap<Vec<(String, u32)>, InstanceId>,
}

impl<'m> TraceBuilder<'m> {
    /// Creates a builder over `model`.
    pub fn new(model: &'m ExecutionModel) -> Self {
        TraceBuilder {
            model,
            instances: Vec::new(),
            blocking: Vec::new(),
            by_path: HashMap::new(),
        }
    }

    /// Adds a phase instance. `path` is the full instance path from the
    /// root, e.g. `&[("job", 0), ("superstep", 3), ("compute", 1)]`; all
    /// ancestors must have been added first.
    pub fn add_phase(
        &mut self,
        path: &[(&str, u32)],
        start: Nanos,
        end: Nanos,
        machine: Option<u16>,
        thread: Option<u16>,
    ) -> Result<InstanceId, Grade10Error> {
        if path.is_empty() {
            return Err(Grade10Error::ModelMismatch("empty phase path".into()));
        }
        // Resolve the type by walking names from the model root.
        let mut type_id = self.model.root();
        if path[0].0 != self.model.name(type_id) {
            return Err(Grade10Error::ModelMismatch(format!(
                "path root '{}' does not match model root '{}'",
                path[0].0,
                self.model.name(type_id)
            )));
        }
        for (name, _) in &path[1..] {
            type_id = self.model.child_by_name(type_id, name).ok_or_else(|| {
                Grade10Error::ModelMismatch(format!("unknown phase type '{name}' in path"))
            })?;
        }
        // Resolve the parent instance.
        let parent = if path.len() == 1 {
            None
        } else {
            let parent_key: Vec<(String, u32)> = path[..path.len() - 1]
                .iter()
                .map(|(n, k)| (n.to_string(), *k))
                .collect();
            Some(*self.by_path.get(&parent_key).ok_or_else(|| {
                Grade10Error::ModelMismatch(format!(
                    "parent instance not added yet for path {:?}",
                    path.iter().map(|(n, k)| format!("{n}[{k}]")).collect::<Vec<_>>()
                ))
            })?)
        };
        let id = InstanceId(self.instances.len() as u32);
        let Some(&(_, key)) = path.last() else {
            unreachable!("path emptiness was rejected at the top of add_phase");
        };
        self.instances.push(PhaseInstance {
            id,
            type_id,
            parent,
            key,
            start,
            end,
            machine,
            thread,
        });
        let full_key: Vec<(String, u32)> =
            path.iter().map(|(n, k)| (n.to_string(), *k)).collect();
        if self.by_path.insert(full_key, id).is_some() {
            return Err(Grade10Error::InvalidTrace(format!(
                "duplicate phase instance path {path:?}"
            )));
        }
        Ok(id)
    }

    /// Adds a blocking event on a previously added instance.
    pub fn add_blocking(
        &mut self,
        instance: InstanceId,
        resource: impl Into<String>,
        start: Nanos,
        end: Nanos,
    ) {
        self.blocking.push(BlockingEvent {
            resource: resource.into(),
            instance,
            start,
            end,
        });
    }

    /// Looks up an instance by its full path.
    pub fn instance_by_path(&self, path: &[(&str, u32)]) -> Option<InstanceId> {
        let key: Vec<(String, u32)> = path.iter().map(|(n, k)| (n.to_string(), *k)).collect();
        self.by_path.get(&key).copied()
    }

    /// Freezes the trace.
    pub fn build(self) -> Result<ExecutionTrace, Grade10Error> {
        ExecutionTrace::from_parts(self.instances, self.blocking)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::execution::{ExecutionModelBuilder, Repeat};

    fn tiny_model() -> ExecutionModel {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let step = b.child(r, "step", Repeat::Sequential);
        let _t = b.child(step, "task", Repeat::Parallel);
        b.build()
    }

    #[test]
    fn builder_resolves_types_and_parents() {
        let m = tiny_model();
        let mut tb = TraceBuilder::new(&m);
        tb.add_phase(&[("job", 0)], 0, 100, None, None).unwrap();
        tb.add_phase(&[("job", 0), ("step", 0)], 0, 50, None, None)
            .unwrap();
        let t0 = tb
            .add_phase(
                &[("job", 0), ("step", 0), ("task", 0)],
                0,
                40,
                Some(1),
                Some(0),
            )
            .unwrap();
        tb.add_blocking(t0, "gc", 10, 20);
        let trace = tb.build().unwrap();
        assert_eq!(trace.instances().len(), 3);
        let task = trace.instance(t0);
        assert_eq!(task.machine, Some(1));
        assert_eq!(trace.blocking_of(t0).count(), 1);
        assert_eq!(trace.makespan_end(), 100);
        assert!(trace.is_leaf(t0));
        assert!(!trace.is_leaf(InstanceId(0)));
        assert_eq!(trace.children_of(InstanceId(0)).len(), 1);
    }

    #[test]
    fn missing_parent_rejected() {
        let m = tiny_model();
        let mut tb = TraceBuilder::new(&m);
        let err = tb
            .add_phase(&[("job", 0), ("step", 0)], 0, 10, None, None)
            .unwrap_err();
        assert!(err.detail().contains("parent instance"), "{err}");
    }

    #[test]
    fn unknown_type_rejected() {
        let m = tiny_model();
        let mut tb = TraceBuilder::new(&m);
        tb.add_phase(&[("job", 0)], 0, 10, None, None).unwrap();
        let err = tb
            .add_phase(&[("job", 0), ("bogus", 0)], 0, 5, None, None)
            .unwrap_err();
        assert!(err.detail().contains("unknown phase type"), "{err}");
    }

    #[test]
    fn duplicate_path_rejected() {
        let m = tiny_model();
        let mut tb = TraceBuilder::new(&m);
        tb.add_phase(&[("job", 0)], 0, 10, None, None).unwrap();
        let err = tb.add_phase(&[("job", 0)], 1, 5, None, None).unwrap_err();
        assert!(err.detail().contains("duplicate"), "{err}");
    }

    #[test]
    fn instance_path_formats_keys() {
        let m = tiny_model();
        let mut tb = TraceBuilder::new(&m);
        tb.add_phase(&[("job", 0)], 0, 100, None, None).unwrap();
        tb.add_phase(&[("job", 0), ("step", 2)], 0, 50, None, None)
            .unwrap();
        let t = tb
            .add_phase(&[("job", 0), ("step", 2), ("task", 7)], 0, 40, None, None)
            .unwrap();
        let trace = tb.build().unwrap();
        assert_eq!(trace.instance_path(&m, t), "job.step[2].task[7]");
    }

    #[test]
    fn ancestor_of_type_walks_up() {
        let m = tiny_model();
        let step_ty = m.find_by_name("step").unwrap();
        let mut tb = TraceBuilder::new(&m);
        tb.add_phase(&[("job", 0)], 0, 100, None, None).unwrap();
        tb.add_phase(&[("job", 0), ("step", 1)], 0, 50, None, None)
            .unwrap();
        let t = tb
            .add_phase(&[("job", 0), ("step", 1), ("task", 0)], 0, 40, None, None)
            .unwrap();
        let trace = tb.build().unwrap();
        let anc = trace.ancestor_of_type(t, step_ty).unwrap();
        assert_eq!(trace.instance(anc).key, 1);
        assert!(trace.ancestor_of_type(InstanceId(0), step_ty).is_none());
    }

    #[test]
    fn trace_serde_round_trip() {
        let m = tiny_model();
        let mut tb = TraceBuilder::new(&m);
        tb.add_phase(&[("job", 0)], 0, 100, None, None).unwrap();
        tb.add_phase(&[("job", 0), ("step", 0)], 0, 50, None, None)
            .unwrap();
        let t0 = tb
            .add_phase(&[("job", 0), ("step", 0), ("task", 0)], 0, 40, Some(1), Some(2))
            .unwrap();
        tb.add_blocking(t0, "gc", 10, 20);
        let trace = tb.build().unwrap();
        let json = serde_json::to_string(&trace).unwrap();
        let back: ExecutionTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.instances(), trace.instances());
        assert_eq!(back.blocking(), trace.blocking());
        // Derived indices survive deserialization.
        assert_eq!(back.children_of(InstanceId(0)), trace.children_of(InstanceId(0)));
        assert_eq!(back.blocking_of(t0).count(), 1);
    }

    #[test]
    fn from_parts_validates() {
        let bad = ExecutionTrace::from_parts(
            vec![PhaseInstance {
                id: InstanceId(0),
                type_id: PhaseTypeId(0),
                parent: None,
                key: 0,
                start: 10,
                end: 5,
                machine: None,
                thread: None,
            }],
            vec![],
        );
        assert!(bad.is_err());
    }
}
