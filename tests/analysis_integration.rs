//! Integration of the analysis extensions (critical path, run comparison,
//! rule lint) against real engine runs.

use grade10::core::compare::compare_traces;
use grade10::core::critical_path::critical_path;
use grade10::core::replay::ReplayConfig;
use grade10::engines::models::{gas_resource_model, pregel_resource_model};
use grade10::engines::pregel::PregelConfig;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadRun, WorkloadSpec};

fn run(work_factor: f64) -> WorkloadRun {
    let mut factors = vec![1.0; 2];
    factors[1] = work_factor;
    run_workload(&WorkloadSpec {
        dataset: Dataset::Rmat { scale: 10, seed: 7 },
        algorithm: Algorithm::PageRank { iterations: 4 },
        engine: EngineKind::Giraph(PregelConfig {
            machines: 2,
            threads: 4,
            cores: 4.0,
            machine_work_factor: factors,
            ..Default::default()
        }),
    })
}

#[test]
fn critical_path_is_compute_dominated_for_pagerank() {
    let r = run(1.0);
    let cp = critical_path(&r.model, &r.trace, &ReplayConfig::default());
    assert!(cp.makespan > 0);
    let thread = r.model.find_by_name("thread").unwrap();
    assert!(
        cp.fraction_of(thread) > 0.5,
        "compute threads should dominate PageRank's critical path, got {:.2}",
        cp.fraction_of(thread)
    );
    // The path is temporally consistent and ends at the makespan.
    for w in cp.hops.windows(2) {
        assert!(w[0].end <= w[1].start);
    }
    assert_eq!(cp.hops.last().unwrap().end, cp.makespan);
}

#[test]
fn comparison_pinpoints_the_degraded_phase_type() {
    let healthy = run(1.0);
    let degraded = run(1.5);
    // A = degraded, B = healthy: the comparison should credit the speedup
    // to the compute threads, whose total duration shrank.
    let cmp = compare_traces(&healthy.model, &degraded.trace, &healthy.trace);
    assert!(cmp.speedup() > 1.05, "speedup {:.3}", cmp.speedup());
    let thread = healthy.model.find_by_name("thread").unwrap();
    let top = &cmp.deltas[0];
    assert_eq!(
        top.phase_type, thread,
        "largest delta should be the compute threads"
    );
    assert!(top.relative_change() < -0.05, "{}", top.relative_change());
}

#[test]
fn bundled_engine_rules_lint_clean() {
    // The shipped expert input must never trip its own linter.
    let giraph = run(1.0);
    assert!(
        giraph
            .rules_tuned
            .lint(&giraph.model, &pregel_resource_model())
            .is_empty()
    );
    let pg = run_workload(&WorkloadSpec {
        dataset: Dataset::Rmat { scale: 9, seed: 7 },
        algorithm: Algorithm::PageRank { iterations: 2 },
        engine: EngineKind::PowerGraph(grade10::engines::gas::GasConfig {
            machines: 2,
            threads: 2,
            cores: 2.0,
            ..Default::default()
        }),
    });
    assert!(
        pg.rules_tuned
            .lint(&pg.model, &gas_resource_model())
            .is_empty()
    );
}

#[test]
fn critical_path_shifts_to_the_slow_machine() {
    let degraded = run(1.6);
    let cp = critical_path(&degraded.model, &degraded.trace, &ReplayConfig::default());
    // Most path time should sit on the degraded machine's phases.
    let slow: u64 = cp
        .hops
        .iter()
        .filter(|h| degraded.trace.instance(h.instance).machine == Some(1))
        .map(|h| h.end - h.start)
        .sum();
    assert!(
        slow as f64 > 0.5 * cp.makespan as f64,
        "slow machine should carry most of the critical path: {slow} of {}",
        cp.makespan
    );
}
