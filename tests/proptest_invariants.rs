//! Property-based tests of the core invariants, across crates.
//!
//! These encode the conservation laws and safety bounds that every
//! refactoring must preserve: allocation never exceeds capacity, upsampling
//! conserves measured totals, attribution conserves consumption, replay is
//! monotone, partitions cover their graphs exactly.

use proptest::prelude::*;

use grade10::cluster::alloc::{fair_share_single, max_min_fair, Consumer};
use grade10::core::attribution::{build_profile, ProfileConfig};
use grade10::core::critical_path::critical_path;
use grade10::core::model::{AttributionRule, ExecutionModelBuilder, Repeat, RuleSet};
use grade10::core::report::{render_gantt, GanttConfig};
use grade10::core::trace::{ExecutionTrace, ResourceInstance, ResourceTrace, TraceBuilder};
use grade10::core::ExecutionModel;
use grade10::core::attribution::upsample::{upsample_measurement, waterfill};
use grade10::core::replay::{replay, ReplayConfig};
use grade10::core::trace::{Measurement, TimesliceGrid, MILLIS};
use grade10::graph::algorithms::{bfs, pagerank};
use grade10::graph::partition::{EdgeCutPartition, VertexCutPartition};
use grade10::graph::{CsrGraph, VertexId};

// ---------- cluster: max–min fair allocation ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn fair_share_respects_capacity_and_demands(
        demands in prop::collection::vec(0.0f64..10.0, 0..20),
        capacity in 0.1f64..50.0,
    ) {
        let rates = fair_share_single(&demands, capacity);
        let total: f64 = rates.iter().sum();
        prop_assert!(total <= capacity + 1e-6);
        for (r, d) in rates.iter().zip(&demands) {
            prop_assert!(*r <= d + 1e-9);
            prop_assert!(*r >= -1e-12);
        }
        // Work conservation: if capacity remains, every demand is met.
        if total < capacity - 1e-6 {
            for (r, d) in rates.iter().zip(&demands) {
                prop_assert!((r - d).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn bipartite_allocation_respects_all_links(
        flows in prop::collection::vec((0usize..4, 0usize..4, 0.1f64..20.0), 1..12),
        caps in prop::collection::vec(0.5f64..10.0, 8),
    ) {
        let consumers: Vec<Consumer> = flows
            .iter()
            .map(|&(src, dst, demand)| Consumer {
                demand,
                links: vec![src, 4 + dst],
            })
            .collect();
        let rates = max_min_fair(&consumers, &caps);
        let mut used = [0.0f64; 8];
        for (c, r) in consumers.iter().zip(&rates) {
            prop_assert!(*r <= c.demand + 1e-9);
            for &l in &c.links {
                used[l] += r;
            }
        }
        for (l, &u) in used.iter().enumerate() {
            prop_assert!(u <= caps[l] + 1e-6, "link {l}: {u} > {}", caps[l]);
        }
    }
}

// ---------- core: waterfill and upsampling ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn waterfill_conserves_and_caps(
        weights in prop::collection::vec(0.0f64..5.0, 1..12),
        caps in prop::collection::vec(0.0f64..8.0, 1..12),
        amount in 0.0f64..40.0,
    ) {
        let n = weights.len().min(caps.len());
        let (weights, caps) = (&weights[..n], &caps[..n]);
        let mut out = vec![0.0; n];
        let left = waterfill(weights, caps, amount, &mut out);
        let placed: f64 = out.iter().sum();
        prop_assert!((placed + left - amount).abs() < 1e-6);
        for i in 0..n {
            prop_assert!(out[i] <= caps[i] + 1e-9);
            if weights[i] == 0.0 {
                prop_assert!(out[i] == 0.0);
            }
        }
    }

    #[test]
    fn upsampling_conserves_total_and_capacity(
        exact in prop::collection::vec(0.0f64..6.0, 4..16),
        variable in prop::collection::vec(0.0f64..3.0, 4..16),
        avg in 0.0f64..5.0,
        capacity in 1.0f64..6.0,
    ) {
        let n = exact.len().min(variable.len());
        let (exact, variable) = (&exact[..n], &variable[..n]);
        let grid = TimesliceGrid::covering(0, n as u64 * 10 * MILLIS, 10 * MILLIS);
        let m = Measurement {
            start: 0,
            end: n as u64 * 10 * MILLIS,
            avg,
        };
        let mut out = vec![0.0; n];
        let overflow = upsample_measurement(&m, &grid, exact, variable, capacity, &mut out);
        let placed: f64 = out.iter().sum();
        prop_assert!((placed + overflow - avg * n as f64).abs() < 1e-6);
        for &v in &out {
            prop_assert!(v <= capacity + 1e-6);
            prop_assert!(v >= -1e-12);
        }
        // Overflow only when the measurement physically exceeds capacity.
        if avg <= capacity - 1e-9 {
            prop_assert!(overflow < 1e-6);
        }
    }
}

// ---------- core: replay monotonicity ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn replay_critical_path_is_monotone_in_durations(
        durs in prop::collection::vec(1u64..200, 4),
        shrink in prop::collection::vec(0.1f64..1.0, 4),
    ) {
        use grade10::core::model::{ExecutionModelBuilder, Repeat};
        use grade10::core::trace::TraceBuilder;
        // job -> step(seq) x2 -> task(par) x2 each.
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let step = b.child(r, "step", Repeat::Sequential);
        let _task = b.child(step, "task", Repeat::Parallel);
        let model = b.build();
        let mut tb = TraceBuilder::new(&model);
        let s0 = durs[0].max(durs[1]);
        let s1 = durs[2].max(durs[3]);
        tb.add_phase(&[("job", 0)], 0, (s0 + s1) * MILLIS, None, None).unwrap();
        for (si, window) in [(0u32, 0..2usize), (1, 2..4)] {
            let base = if si == 0 { 0 } else { s0 };
            let len = if si == 0 { s0 } else { s1 };
            tb.add_phase(&[("job", 0), ("step", si)], base * MILLIS, (base + len) * MILLIS, None, None).unwrap();
            for (k, di) in window.enumerate() {
                tb.add_phase(
                    &[("job", 0), ("step", si), ("task", k as u32)],
                    base * MILLIS,
                    (base + durs[di]) * MILLIS,
                    Some(0),
                    Some(k as u16),
                ).unwrap();
            }
        }
        let trace = tb.build().unwrap();
        let cfg = ReplayConfig { enforce_concurrency: false };
        let base = replay(&model, &trace, &|id| trace.instance(id).duration(), &cfg);
        let shrunk = replay(
            &model,
            &trace,
            &|id| {
                let inst = trace.instance(id);
                if trace.is_leaf(id) {
                    (inst.duration() as f64 * shrink[inst.thread.unwrap_or(0) as usize % 4]) as u64
                } else {
                    inst.duration()
                }
            },
            &cfg,
        );
        prop_assert!(shrunk.makespan <= base.makespan);
        // Critical path equals the sum of each step's longest task.
        let expect = durs[0].max(durs[1]) + durs[2].max(durs[3]);
        prop_assert_eq!(base.makespan, expect * MILLIS);
    }
}

// ---------- graph: partitions and algorithms ----------

fn arbitrary_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..40, prop::collection::vec((0u32..40, 0u32..40), 1..120)).prop_map(|(n, edges)| {
        let edges: Vec<(VertexId, VertexId)> = edges
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        CsrGraph::with_transpose(n, &edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn edge_cut_partition_covers_all_vertices(g in arbitrary_graph(), parts in 1usize..6) {
        let p = EdgeCutPartition::hash(&g, parts);
        let loads = p.vertex_loads();
        prop_assert_eq!(loads.iter().sum::<u64>() as usize, g.num_vertices());
        for v in g.vertices() {
            prop_assert!((p.owner(v) as usize) < parts);
        }
    }

    #[test]
    fn vertex_cut_covers_all_edges_once(g in arbitrary_graph(), parts in 1usize..6) {
        let p = VertexCutPartition::greedy(&g, parts);
        prop_assert_eq!(p.edge_loads().iter().sum::<u64>() as usize, g.num_edges());
        // Every endpoint of every edge has a replica where the edge lives.
        let mut eidx = 0u64;
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                let owner = p.edge_owner(eidx);
                prop_assert!(p.has_replica(u, owner));
                prop_assert!(p.has_replica(v, owner));
                eidx += 1;
            }
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_inequality(g in arbitrary_graph()) {
        let p = EdgeCutPartition::hash(&g, 1);
        let r = bfs(&g, &p, 0);
        for (u, v) in g.edges() {
            let du = r.distance[u as usize];
            if du != u64::MAX {
                prop_assert!(r.distance[v as usize] <= du + 1);
            }
        }
        prop_assert_eq!(r.distance[0], 0);
    }

    #[test]
    fn pagerank_mass_is_conserved(g in arbitrary_graph(), iters in 1usize..6) {
        let p = EdgeCutPartition::hash(&g, 2);
        let r = pagerank(&g, &p, iters, 0.85);
        let sum: f64 = r.rank.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "rank mass {sum}");
        prop_assert!(r.rank.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn timeslice_grid_partitions_time(origin in 0u64..1000, span in 1u64..100_000, slice in 1u64..1000) {
        let grid = TimesliceGrid::covering(origin, origin + span, slice);
        // Slices tile the covered range without gaps.
        let mut expected_start = origin;
        for i in 0..grid.num_slices() {
            let (s, e) = grid.bounds(i);
            prop_assert_eq!(s, expected_start);
            prop_assert_eq!(e - s, slice);
            expected_start = e;
        }
        prop_assert!(expected_start >= origin + span);
        // Every instant maps to the slice containing it.
        for t in [origin, origin + span / 2, origin + span - 1] {
            let i = grid.slice_of(t);
            let (s, e) = grid.bounds(i);
            prop_assert!(s <= t && t < e);
        }
    }
}


// ---------- core: full attribution pipeline under random inputs ----------

/// A random flat workload: n parallel phases with arbitrary intervals and
/// rules, one CPU, random measurements.
fn random_scenario() -> impl Strategy<
    Value = (ExecutionModel, RuleSet, ExecutionTrace, ResourceTrace),
> {
    (
        prop::collection::vec((0u64..20, 1u64..20, 0u8..3, 1u32..6), 1..8),
        prop::collection::vec(0.0f64..5.0, 1..10),
    )
        .prop_map(|(phases, samples)| {
            let mut b = ExecutionModelBuilder::new("job");
            let root = b.root();
            let ty = b.child(root, "p", Repeat::Parallel);
            let model = b.build();
            let mut rules = RuleSet::new().with_default(AttributionRule::None);
            let end = phases
                .iter()
                .map(|&(s, d, _, _)| s + d)
                .max()
                .unwrap()
                .max(samples.len() as u64 * 2);
            let mut tb = TraceBuilder::new(&model);
            tb.add_phase(&[("job", 0)], 0, end * 10 * MILLIS, None, None)
                .unwrap();
            for (k, &(start, dur, rule_kind, weight)) in phases.iter().enumerate() {
                tb.add_phase(
                    &[("job", 0), ("p", k as u32)],
                    start * 10 * MILLIS,
                    (start + dur) * 10 * MILLIS,
                    Some(0),
                    Some(k as u16),
                )
                .unwrap();
                // One rule for the whole type: last phase wins, which is
                // fine — the invariants hold for any rule.
                let rule = match rule_kind {
                    0 => AttributionRule::None,
                    1 => AttributionRule::Exact((weight as f64 / 10.0).min(1.0)),
                    _ => AttributionRule::Variable(weight as f64),
                };
                rules.set(ty, "cpu", rule);
            }
            let trace = tb.build().unwrap();
            let mut rt = ResourceTrace::new();
            let cpu = rt.add_resource(ResourceInstance {
                kind: "cpu".into(),
                machine: Some(0),
                capacity: 4.0,
            });
            rt.add_series(cpu, 0, 20 * MILLIS, &samples);
            (model, rules, trace, rt)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn attribution_pipeline_invariants_hold_for_random_inputs(
        (model, rules, trace, rt) in random_scenario()
    ) {
        let profile = build_profile(&model, &rules, &trace, &rt, &ProfileConfig::default());
        let measured = rt.total_consumption(grade10::core::trace::ResourceIdx(0));
        let upsampled: f64 =
            profile.consumption[0].iter().sum::<f64>() * profile.grid.slice_secs();
        // Conservation up to reported overflow.
        prop_assert!(
            (measured - upsampled - profile.overflow[0]).abs() < 1e-6 + measured * 1e-9
        );
        // Capacity respected everywhere.
        for &c in &profile.consumption[0] {
            prop_assert!(c <= 4.0 + 1e-9);
            prop_assert!(c >= -1e-12);
        }
        // Attribution + unattributed == consumption per slice.
        for s in 0..profile.grid.num_slices() {
            let attributed: f64 = profile.usages.iter().map(|u| u.usage_at(s)).sum();
            prop_assert!(
                (attributed + profile.unattributed[0][s] - profile.consumption[0][s]).abs()
                    < 1e-6
            );
            prop_assert!(attributed >= -1e-9);
        }
    }

    #[test]
    fn critical_path_accounts_for_the_whole_makespan(
        durs in prop::collection::vec(1u64..100, 2..10)
    ) {
        // Sequential steps: the path must cover every step exactly.
        let mut b = ExecutionModelBuilder::new("job");
        let root = b.root();
        let _ = b.child(root, "step", Repeat::Sequential);
        let model = b.build();
        let total: u64 = durs.iter().sum();
        let mut tb = TraceBuilder::new(&model);
        tb.add_phase(&[("job", 0)], 0, total * MILLIS, None, None).unwrap();
        let mut t0 = 0u64;
        for (k, &d) in durs.iter().enumerate() {
            tb.add_phase(
                &[("job", 0), ("step", k as u32)],
                t0 * MILLIS,
                (t0 + d) * MILLIS,
                Some(0),
                Some(0),
            )
            .unwrap();
            t0 += d;
        }
        let trace = tb.build().unwrap();
        let cp = critical_path(&model, &trace, &Default::default());
        prop_assert_eq!(cp.makespan, total * MILLIS);
        prop_assert_eq!(cp.hops.len(), durs.len());
        let path_time: u64 = cp.hops.iter().map(|h| h.end - h.start).sum();
        prop_assert_eq!(path_time, total * MILLIS);
    }

    #[test]
    fn gantt_renders_arbitrary_traces_without_panicking(
        phases in prop::collection::vec((0u64..50, 1u64..50), 1..20),
        width in 1usize..200,
    ) {
        let mut b = ExecutionModelBuilder::new("job");
        let root = b.root();
        let _ = b.child(root, "p", Repeat::Parallel);
        let model = b.build();
        let end = phases.iter().map(|&(s, d)| s + d).max().unwrap();
        let mut tb = TraceBuilder::new(&model);
        tb.add_phase(&[("job", 0)], 0, end * MILLIS, None, None).unwrap();
        for (k, &(s, d)) in phases.iter().enumerate() {
            tb.add_phase(
                &[("job", 0), ("p", k as u32)],
                s * MILLIS,
                (s + d).min(end) * MILLIS,
                Some(0),
                Some(k as u16),
            )
            .unwrap();
        }
        let trace = tb.build().unwrap();
        let out = render_gantt(
            &model,
            &trace,
            &GanttConfig {
                width,
                max_depth: 2,
                max_rows: 10,
            },
        );
        prop_assert!(!out.is_empty());
        // Row count respects the cap (+1 for the omission note).
        prop_assert!(out.lines().count() <= 11);
    }
}
