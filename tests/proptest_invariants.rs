//! Property-based tests of the core invariants, across crates.
//!
//! These encode the conservation laws and safety bounds that every
//! refactoring must preserve: allocation never exceeds capacity, upsampling
//! conserves measured totals, attribution conserves consumption, replay is
//! monotone, partitions cover their graphs exactly.
//!
//! Cases are generated from seeded ChaCha8 streams (one seed per case, so a
//! failure report's seed reproduces the exact input) rather than a shrinking
//! framework; the invariants themselves are unchanged from the original
//! proptest suite.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use grade10::cluster::alloc::{fair_share_single, max_min_fair, Consumer};
use grade10::cluster::{FaultClass, FaultPlan};
use grade10::core::attribution::upsample::{upsample_measurement, waterfill};
use grade10::core::attribution::{build_profile, ProfileConfig};
use grade10::core::critical_path::critical_path;
use grade10::core::model::{AttributionRule, ExecutionModelBuilder, Repeat, RuleSet};
use grade10::core::parse::RawEvent;
use grade10::core::pipeline::{characterize_events, CharacterizationConfig};
use grade10::core::replay::{replay, ReplayConfig};
use grade10::core::report::{render_gantt, GanttConfig};
use grade10::core::trace::repair::validate_event_stream;
use grade10::core::trace::{
    ingest_monitoring, repair_events, ExecutionTrace, IngestConfig, IngestReport, Measurement,
    RawSeries, ResourceIdx, ResourceInstance, ResourceTrace, TimesliceGrid, TraceBuilder, MILLIS,
};
use grade10::core::ExecutionModel;
use grade10::engines::bridge::{to_raw_events, to_raw_series};
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadRun, WorkloadSpec};
use grade10::graph::algorithms::{bfs, pagerank};
use grade10::graph::partition::{EdgeCutPartition, VertexCutPartition};
use grade10::graph::{CsrGraph, VertexId};

fn vec_f64(rng: &mut ChaCha8Rng, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let n = rng.gen_range(min_len..=max_len);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

// ---------- cluster: max–min fair allocation ----------

#[test]
fn fair_share_respects_capacity_and_demands() {
    for case in 0..200u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5A17_0000 + case);
        let demands = vec_f64(&mut rng, 0.0, 10.0, 0, 19);
        let capacity = rng.gen_range(0.1..50.0);
        let rates = fair_share_single(&demands, capacity);
        let total: f64 = rates.iter().sum();
        assert!(total <= capacity + 1e-6, "case {case}");
        for (r, d) in rates.iter().zip(&demands) {
            assert!(*r <= d + 1e-9, "case {case}");
            assert!(*r >= -1e-12, "case {case}");
        }
        // Work conservation: if capacity remains, every demand is met.
        if total < capacity - 1e-6 {
            for (r, d) in rates.iter().zip(&demands) {
                assert!((r - d).abs() < 1e-6, "case {case}");
            }
        }
    }
}

#[test]
fn bipartite_allocation_respects_all_links() {
    for case in 0..200u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5A17_1000 + case);
        let nflows = rng.gen_range(1..12usize);
        let consumers: Vec<Consumer> = (0..nflows)
            .map(|_| Consumer {
                demand: rng.gen_range(0.1..20.0),
                links: vec![rng.gen_range(0..4usize), 4 + rng.gen_range(0..4usize)],
            })
            .collect();
        let caps: Vec<f64> = (0..8).map(|_| rng.gen_range(0.5..10.0)).collect();
        let rates = max_min_fair(&consumers, &caps);
        let mut used = [0.0f64; 8];
        for (c, r) in consumers.iter().zip(&rates) {
            assert!(*r <= c.demand + 1e-9, "case {case}");
            for &l in &c.links {
                used[l] += r;
            }
        }
        for (l, &u) in used.iter().enumerate() {
            assert!(u <= caps[l] + 1e-6, "case {case} link {l}: {u} > {}", caps[l]);
        }
    }
}

// ---------- core: waterfill and upsampling ----------

#[test]
fn waterfill_conserves_and_caps() {
    for case in 0..200u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5A17_2000 + case);
        let weights = vec_f64(&mut rng, 0.0, 5.0, 1, 11);
        let caps = vec_f64(&mut rng, 0.0, 8.0, 1, 11);
        let amount = rng.gen_range(0.0..40.0);
        let n = weights.len().min(caps.len());
        let (weights, caps) = (&weights[..n], &caps[..n]);
        let mut out = vec![0.0; n];
        let left = waterfill(weights, caps, amount, &mut out);
        let placed: f64 = out.iter().sum();
        assert!((placed + left - amount).abs() < 1e-6, "case {case}");
        for i in 0..n {
            assert!(out[i] <= caps[i] + 1e-9, "case {case}");
            if weights[i] == 0.0 {
                assert!(out[i] == 0.0, "case {case}");
            }
        }
    }
}

/// Waterfill's convergence tolerances are relative to the problem's
/// magnitude: the same random shapes must conserve and cap at scales from
/// 1e-15 to 1e+15, where an absolute epsilon either spins (huge inputs
/// never get within 1e-12 of converged) or leaks the whole amount back
/// (tiny inputs read as converged immediately).
#[test]
fn waterfill_conserves_at_extreme_magnitudes() {
    for case in 0..200u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5A17_2100 + case);
        let scale = [1e-15f64, 1e-9, 1.0, 1e9, 1e15][(case % 5) as usize];
        let weights = vec_f64(&mut rng, 0.0, 5.0, 1, 11);
        let caps: Vec<f64> = vec_f64(&mut rng, 0.0, 8.0, weights.len(), weights.len())
            .iter()
            .map(|c| c * scale)
            .collect();
        let amount = rng.gen_range(0.0..40.0) * scale;
        let mut out = vec![0.0; weights.len()];
        let left = waterfill(&weights, &caps, amount, &mut out);
        let placed: f64 = out.iter().sum();
        assert!(
            (placed + left - amount).abs() < 1e-6 * scale.max(1.0),
            "case {case} scale {scale}: placed {placed} + left {left} != {amount}"
        );
        for i in 0..weights.len() {
            assert!(out[i] <= caps[i] * (1.0 + 1e-9), "case {case} scale {scale}");
            if weights[i] == 0.0 {
                assert!(out[i] == 0.0, "case {case} scale {scale}");
            }
        }
    }
}

/// Mass conservation must survive measurement windows whose bounds sit off
/// the slice boundaries: placed + overflow equals `avg × true duration`
/// (in units × slices), not `avg × snapped slice count`.
#[test]
fn upsampling_conserves_true_mass_for_off_boundary_windows() {
    for case in 0..200u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5A17_3100 + case);
        let n = rng.gen_range(4..15usize);
        let exact = vec_f64(&mut rng, 0.0, 6.0, n, n);
        let variable = vec_f64(&mut rng, 0.0, 3.0, n, n);
        let avg = rng.gen_range(0.0..5.0);
        let capacity = rng.gen_range(1.0..6.0);
        let grid = TimesliceGrid::covering(0, n as u64 * 10 * MILLIS, 10 * MILLIS);
        // Arbitrary sub-slice bounds inside the grid, never snapped-aligned
        // by construction.
        let start = rng.gen_range(0..(n as u64 - 2) * 10 * MILLIS);
        let end = rng.gen_range(start + 1..n as u64 * 10 * MILLIS);
        let m = Measurement { start, end, avg };
        let true_slices = (end - start) as f64 / (10 * MILLIS) as f64;
        let mut out = vec![0.0; n];
        let overflow = upsample_measurement(&m, &grid, &exact, &variable, capacity, &mut out);
        let placed: f64 = out.iter().sum();
        assert!(
            (placed + overflow - avg * true_slices).abs() < 1e-6,
            "case {case}: [{start},{end}) placed {placed} + overflow {overflow} \
             != {avg} × {true_slices}"
        );
        for &v in &out {
            assert!(v <= capacity + 1e-6, "case {case}");
            assert!(v >= -1e-12, "case {case}");
        }
    }
}

#[test]
fn upsampling_conserves_total_and_capacity() {
    for case in 0..200u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5A17_3000 + case);
        let exact = vec_f64(&mut rng, 0.0, 6.0, 4, 15);
        let variable = vec_f64(&mut rng, 0.0, 3.0, 4, 15);
        let avg = rng.gen_range(0.0..5.0);
        let capacity = rng.gen_range(1.0..6.0);
        let n = exact.len().min(variable.len());
        let (exact, variable) = (&exact[..n], &variable[..n]);
        let grid = TimesliceGrid::covering(0, n as u64 * 10 * MILLIS, 10 * MILLIS);
        let m = Measurement {
            start: 0,
            end: n as u64 * 10 * MILLIS,
            avg,
        };
        let mut out = vec![0.0; n];
        let overflow = upsample_measurement(&m, &grid, exact, variable, capacity, &mut out);
        let placed: f64 = out.iter().sum();
        assert!((placed + overflow - avg * n as f64).abs() < 1e-6, "case {case}");
        for &v in &out {
            assert!(v <= capacity + 1e-6, "case {case}");
            assert!(v >= -1e-12, "case {case}");
        }
        // Overflow only when the measurement physically exceeds capacity.
        if avg <= capacity - 1e-9 {
            assert!(overflow < 1e-6, "case {case}");
        }
    }
}

// ---------- core: replay monotonicity ----------

#[test]
fn replay_critical_path_is_monotone_in_durations() {
    for case in 0..64u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5A17_4000 + case);
        let durs: Vec<u64> = (0..4).map(|_| rng.gen_range(1..200u64)).collect();
        let shrink: Vec<f64> = (0..4).map(|_| rng.gen_range(0.1..1.0)).collect();
        // job -> step(seq) x2 -> task(par) x2 each.
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let step = b.child(r, "step", Repeat::Sequential);
        let _task = b.child(step, "task", Repeat::Parallel);
        let model = b.build();
        let mut tb = TraceBuilder::new(&model);
        let s0 = durs[0].max(durs[1]);
        let s1 = durs[2].max(durs[3]);
        tb.add_phase(&[("job", 0)], 0, (s0 + s1) * MILLIS, None, None)
            .unwrap();
        for (si, window) in [(0u32, 0..2usize), (1, 2..4)] {
            let base = if si == 0 { 0 } else { s0 };
            let len = if si == 0 { s0 } else { s1 };
            tb.add_phase(
                &[("job", 0), ("step", si)],
                base * MILLIS,
                (base + len) * MILLIS,
                None,
                None,
            )
            .unwrap();
            for (k, di) in window.enumerate() {
                tb.add_phase(
                    &[("job", 0), ("step", si), ("task", k as u32)],
                    base * MILLIS,
                    (base + durs[di]) * MILLIS,
                    Some(0),
                    Some(k as u16),
                )
                .unwrap();
            }
        }
        let trace = tb.build().unwrap();
        let cfg = ReplayConfig {
            enforce_concurrency: false,
        };
        let base = replay(&model, &trace, &|id| trace.instance(id).duration(), &cfg);
        let shrunk = replay(
            &model,
            &trace,
            &|id| {
                let inst = trace.instance(id);
                if trace.is_leaf(id) {
                    (inst.duration() as f64 * shrink[inst.thread.unwrap_or(0) as usize % 4]) as u64
                } else {
                    inst.duration()
                }
            },
            &cfg,
        );
        assert!(shrunk.makespan <= base.makespan, "case {case}");
        // Critical path equals the sum of each step's longest task.
        let expect = durs[0].max(durs[1]) + durs[2].max(durs[3]);
        assert_eq!(base.makespan, expect * MILLIS, "case {case}");
    }
}

// ---------- graph: partitions and algorithms ----------

fn arbitrary_graph(rng: &mut ChaCha8Rng) -> CsrGraph {
    let n = rng.gen_range(2..40usize);
    let nedges = rng.gen_range(1..120usize);
    let edges: Vec<(VertexId, VertexId)> = (0..nedges)
        .map(|_| {
            (
                rng.gen_range(0..n) as VertexId,
                rng.gen_range(0..n) as VertexId,
            )
        })
        .collect();
    CsrGraph::with_transpose(n, &edges)
}

#[test]
fn edge_cut_partition_covers_all_vertices() {
    for case in 0..100u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5A17_5000 + case);
        let g = arbitrary_graph(&mut rng);
        let parts = rng.gen_range(1..6usize);
        let p = EdgeCutPartition::hash(&g, parts);
        let loads = p.vertex_loads();
        assert_eq!(loads.iter().sum::<u64>() as usize, g.num_vertices(), "case {case}");
        for v in g.vertices() {
            assert!((p.owner(v) as usize) < parts, "case {case}");
        }
    }
}

#[test]
fn vertex_cut_covers_all_edges_once() {
    for case in 0..100u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5A17_6000 + case);
        let g = arbitrary_graph(&mut rng);
        let parts = rng.gen_range(1..6usize);
        let p = VertexCutPartition::greedy(&g, parts);
        assert_eq!(
            p.edge_loads().iter().sum::<u64>() as usize,
            g.num_edges(),
            "case {case}"
        );
        // Every endpoint of every edge has a replica where the edge lives.
        let mut eidx = 0u64;
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                let owner = p.edge_owner(eidx);
                assert!(p.has_replica(u, owner), "case {case}");
                assert!(p.has_replica(v, owner), "case {case}");
                eidx += 1;
            }
        }
    }
}

#[test]
fn bfs_distances_satisfy_triangle_inequality() {
    for case in 0..100u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5A17_7000 + case);
        let g = arbitrary_graph(&mut rng);
        let p = EdgeCutPartition::hash(&g, 1);
        let r = bfs(&g, &p, 0);
        for (u, v) in g.edges() {
            let du = r.distance[u as usize];
            if du != u64::MAX {
                assert!(r.distance[v as usize] <= du + 1, "case {case}");
            }
        }
        assert_eq!(r.distance[0], 0, "case {case}");
    }
}

#[test]
fn pagerank_mass_is_conserved() {
    for case in 0..100u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5A17_8000 + case);
        let g = arbitrary_graph(&mut rng);
        let iters = rng.gen_range(1..6usize);
        let p = EdgeCutPartition::hash(&g, 2);
        let r = pagerank(&g, &p, iters, 0.85);
        let sum: f64 = r.rank.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "case {case}: rank mass {sum}");
        assert!(r.rank.iter().all(|&x| x >= 0.0), "case {case}");
    }
}

#[test]
fn timeslice_grid_partitions_time() {
    for case in 0..100u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5A17_9000 + case);
        let origin = rng.gen_range(0..1000u64);
        let span = rng.gen_range(1..100_000u64);
        let slice = rng.gen_range(1..1000u64);
        let grid = TimesliceGrid::covering(origin, origin + span, slice);
        // Slices tile the covered range without gaps.
        let mut expected_start = origin;
        for i in 0..grid.num_slices() {
            let (s, e) = grid.bounds(i);
            assert_eq!(s, expected_start, "case {case}");
            assert_eq!(e - s, slice, "case {case}");
            expected_start = e;
        }
        assert!(expected_start >= origin + span, "case {case}");
        // Every instant maps to the slice containing it.
        for t in [origin, origin + span / 2, origin + span - 1] {
            let i = grid.slice_of(t);
            let (s, e) = grid.bounds(i);
            assert!(s <= t && t < e, "case {case}");
        }
    }
}

// ---------- core: full attribution pipeline under random inputs ----------

/// A random flat workload: n parallel phases with arbitrary intervals and
/// rules, one CPU, random measurements.
fn random_scenario(
    rng: &mut ChaCha8Rng,
) -> (ExecutionModel, RuleSet, ExecutionTrace, ResourceTrace) {
    let nphases = rng.gen_range(1..8usize);
    let phases: Vec<(u64, u64, u32, u32)> = (0..nphases)
        .map(|_| {
            (
                rng.gen_range(0..20u64),
                rng.gen_range(1..20u64),
                rng.gen_range(0..3u32),
                rng.gen_range(1..6u32),
            )
        })
        .collect();
    let samples = vec_f64(rng, 0.0, 5.0, 1, 9);
    let mut b = ExecutionModelBuilder::new("job");
    let root = b.root();
    let ty = b.child(root, "p", Repeat::Parallel);
    let model = b.build();
    let mut rules = RuleSet::new().with_default(AttributionRule::None);
    let end = phases
        .iter()
        .map(|&(s, d, _, _)| s + d)
        .max()
        .unwrap()
        .max(samples.len() as u64 * 2);
    let mut tb = TraceBuilder::new(&model);
    tb.add_phase(&[("job", 0)], 0, end * 10 * MILLIS, None, None)
        .unwrap();
    for (k, &(start, dur, rule_kind, weight)) in phases.iter().enumerate() {
        tb.add_phase(
            &[("job", 0), ("p", k as u32)],
            start * 10 * MILLIS,
            (start + dur) * 10 * MILLIS,
            Some(0),
            Some(k as u16),
        )
        .unwrap();
        // One rule for the whole type: last phase wins, which is
        // fine — the invariants hold for any rule.
        let rule = match rule_kind {
            0 => AttributionRule::None,
            1 => AttributionRule::Exact((weight as f64 / 10.0).min(1.0)),
            _ => AttributionRule::Variable(weight as f64),
        };
        rules.set(ty, "cpu", rule);
    }
    let trace = tb.build().unwrap();
    let mut rt = ResourceTrace::new();
    let cpu = rt.add_resource(ResourceInstance {
        kind: "cpu".into(),
        machine: Some(0),
        capacity: 4.0,
    });
    rt.add_series(cpu, 0, 20 * MILLIS, &samples);
    (model, rules, trace, rt)
}

#[test]
fn attribution_pipeline_invariants_hold_for_random_inputs() {
    for case in 0..100u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5A17_A000 + case);
        let (model, rules, trace, rt) = random_scenario(&mut rng);
        let profile = build_profile(&model, &rules, &trace, &rt, &ProfileConfig::default());
        let measured = rt.total_consumption(grade10::core::trace::ResourceIdx(0));
        let upsampled: f64 =
            profile.consumption[0].iter().sum::<f64>() * profile.grid.slice_secs();
        // Conservation up to reported overflow.
        assert!(
            (measured - upsampled - profile.overflow[0]).abs() < 1e-6 + measured * 1e-9,
            "case {case}"
        );
        // Capacity respected everywhere.
        for &c in &profile.consumption[0] {
            assert!(c <= 4.0 + 1e-9, "case {case}");
            assert!(c >= -1e-12, "case {case}");
        }
        // Attribution + unattributed == consumption per slice.
        for s in 0..profile.grid.num_slices() {
            let attributed: f64 = profile.usages.iter().map(|u| u.usage_at(s)).sum();
            assert!(
                (attributed + profile.unattributed[0][s] - profile.consumption[0][s]).abs() < 1e-6,
                "case {case}"
            );
            assert!(attributed >= -1e-9, "case {case}");
        }
    }
}

#[test]
fn critical_path_accounts_for_the_whole_makespan() {
    for case in 0..100u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5A17_B000 + case);
        let ndurs = rng.gen_range(2..10usize);
        let durs: Vec<u64> = (0..ndurs).map(|_| rng.gen_range(1..100u64)).collect();
        // Sequential steps: the path must cover every step exactly.
        let mut b = ExecutionModelBuilder::new("job");
        let root = b.root();
        let _ = b.child(root, "step", Repeat::Sequential);
        let model = b.build();
        let total: u64 = durs.iter().sum();
        let mut tb = TraceBuilder::new(&model);
        tb.add_phase(&[("job", 0)], 0, total * MILLIS, None, None)
            .unwrap();
        let mut t0 = 0u64;
        for (k, &d) in durs.iter().enumerate() {
            tb.add_phase(
                &[("job", 0), ("step", k as u32)],
                t0 * MILLIS,
                (t0 + d) * MILLIS,
                Some(0),
                Some(0),
            )
            .unwrap();
            t0 += d;
        }
        let trace = tb.build().unwrap();
        let cp = critical_path(&model, &trace, &Default::default());
        assert_eq!(cp.makespan, total * MILLIS, "case {case}");
        assert_eq!(cp.hops.len(), durs.len(), "case {case}");
        let path_time: u64 = cp.hops.iter().map(|h| h.end - h.start).sum();
        assert_eq!(path_time, total * MILLIS, "case {case}");
    }
}

// ---------- core: lenient-ingestion repair laws ----------

/// A small simulated workload whose pristine streams the fault harness can
/// corrupt — the same shape the fault-tolerance integration tests use.
fn fault_run() -> WorkloadRun {
    run_workload(&WorkloadSpec {
        dataset: Dataset::Rmat { scale: 8, seed: 3 },
        algorithm: Algorithm::PageRank { iterations: 2 },
        engine: EngineKind::Giraph(grade10::engines::pregel::PregelConfig {
            machines: 2,
            threads: 2,
            cores: 2.0,
            ..Default::default()
        }),
    })
}

/// Repair is idempotent: a repaired stream satisfies the strict contract,
/// and repairing it again repairs nothing and yields the same events.
///
/// Tie order among events with equal (time, kind, depth) sort keys comes
/// from hash-map iteration and may differ between passes, so the streams
/// are compared as multisets.
#[test]
fn lenient_event_repair_is_idempotent() {
    let run = fault_run();
    let as_multiset = |evs: &[RawEvent]| {
        let mut v: Vec<String> = evs.iter().map(|e| format!("{e:?}")).collect();
        v.sort();
        v
    };
    for case in 0..24u64 {
        let plan = FaultPlan::all(0x5A17_D000 + case);
        let damaged = to_raw_events(&plan.inject_logs(&run.sim.logs));
        let mut first = IngestReport::default();
        let once = repair_events(&damaged, &mut first);
        assert!(first.event_repairs() > 0, "case {case}: no damage injected");
        validate_event_stream(&once)
            .unwrap_or_else(|e| panic!("case {case}: repaired stream is not strict-clean: {e}"));
        let mut second = IngestReport::default();
        let twice = repair_events(&once, &mut second);
        assert_eq!(second.event_repairs(), 0, "case {case}: second repair repaired");
        assert_eq!(as_multiset(&once), as_multiset(&twice), "case {case}");
    }
}

/// Monitoring repair is idempotent: re-ingesting an already-repaired
/// resource trace repairs nothing and reproduces it exactly.
#[test]
fn lenient_monitoring_repair_is_idempotent() {
    let run = fault_run();
    let cfg = IngestConfig::lenient();
    for case in 0..24u64 {
        let plan = FaultPlan::all(0x5A17_D100 + case);
        let damaged = to_raw_series(&plan.inject_series(&run.sim.series), 8);
        let mut first = IngestReport::default();
        let rt1 = ingest_monitoring(&damaged, &cfg, &mut first).unwrap();
        let mut second = IngestReport::default();
        let rt2 = ingest_monitoring(&RawSeries::from_trace(&rt1), &cfg, &mut second).unwrap();
        assert_eq!(second.monitoring_repairs(), 0, "case {case}");
        assert_eq!(rt1.instances(), rt2.instances(), "case {case}");
        for r in 0..rt1.instances().len() {
            let idx = ResourceIdx(r as u32);
            assert_eq!(rt1.measurements(idx), rt2.measurements(idx), "case {case}");
        }
    }
}

/// `quality_score` is monotone non-increasing in every damage counter:
/// with totals fixed, reporting one more repair of any kind never raises
/// the score. This is the exact law the 0–1 score must obey for "lower
/// score" to mean "less trustworthy input".
#[test]
fn quality_score_is_monotone_in_damage_counters() {
    for case in 0..200u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5A17_F000 + case);
        let mut r = IngestReport {
            events_total: rng.gen_range(1..500usize),
            monitoring_windows_total: rng.gen_range(1..100usize),
            slices_total: rng.gen_range(1..1000usize),
            ..Default::default()
        };
        let bump = |r: &mut IngestReport, which: usize, by: usize| match which {
            0 => r.out_of_order_fixed += by,
            1 => r.duplicates_dropped += by,
            2 => r.duplicate_starts_dropped += by,
            3 => r.missing_ends_synthesized += by,
            4 => r.unmatched_ends_dropped += by,
            5 => r.negative_durations_clamped += by,
            6 => r.ancestors_synthesized += by,
            7 => r.monitoring_invalid += by,
            8 => r.monitoring_negatives_clamped += by,
            9 => r.monitoring_out_of_order += by,
            10 => r.monitoring_gaps_interpolated += by,
            _ => r.slices_estimated = (r.slices_estimated + by).min(r.slices_total),
        };
        // Random starting damage, then single-counter increments.
        for _ in 0..rng.gen_range(0..8usize) {
            let which = rng.gen_range(0..12usize);
            let by = rng.gen_range(0..20usize);
            bump(&mut r, which, by);
        }
        let before = r.quality_score();
        assert!((0.0..=1.0).contains(&before), "case {case}: {before}");
        for which in 0..12usize {
            let mut worse = r.clone();
            bump(&mut worse, which, 1);
            let after = worse.quality_score();
            assert!(
                after <= before + 1e-12,
                "case {case}: counter {which} raised quality {before} -> {after}"
            );
        }
    }
}

/// Adding stream-damage fault classes (in `FaultClass::STREAM_DAMAGE`
/// order, same seed) does not improve the ingest quality score beyond
/// noise: more injected damage, same or lower trust.
///
/// The comparison carries a small tolerance because the classes interact
/// through repair: a duplicated block record can *realign* the rank
/// pairing that earlier drops had shifted, legitimately reducing the
/// clamp count by a hair. The score is honest about that — it reflects
/// repairs actually performed, not faults nominally enabled. The hostile
/// classes are excluded for the same reason, only more so:
/// `machine-missing` deletes an entire machine's (damaged) events, which
/// can legitimately *raise* the score of what remains.
#[test]
fn quality_score_is_monotone_in_fault_classes() {
    let run = fault_run();
    let mut cfg = CharacterizationConfig::default();
    cfg.profile.slice = 10 * MILLIS;
    cfg.profile.estimate_missing = true;
    cfg.ingest = IngestConfig::lenient();
    for seed in 0..6u64 {
        let mut plan = FaultPlan::clean(0x5A17_E000 + seed);
        let mut prev = 1.0f64;
        let mut prev_classes = String::from("(clean)");
        for class in FaultClass::STREAM_DAMAGE {
            plan.enable(class);
            let events = to_raw_events(&plan.inject_logs(&run.sim.logs));
            let monitoring = to_raw_series(&plan.inject_series(&run.sim.series), 8);
            let result =
                characterize_events(&run.model, &run.rules_tuned, &events, &monitoring, &cfg)
                    .unwrap_or_else(|e| panic!("seed {seed} +{}: {e}", class.name()));
            let q = result.ingest.quality_score();
            assert!(
                q <= prev + 0.02,
                "seed {seed}: adding {} raised quality {prev} -> {q} (after {prev_classes})",
                class.name()
            );
            prev = q;
            prev_classes = class.name().to_string();
        }
        assert!(prev < 1.0, "seed {seed}: all faults enabled but quality is 1.0");
    }
}

#[test]
fn gantt_renders_arbitrary_traces_without_panicking() {
    for case in 0..100u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5A17_C000 + case);
        let nphases = rng.gen_range(1..20usize);
        let phases: Vec<(u64, u64)> = (0..nphases)
            .map(|_| (rng.gen_range(0..50u64), rng.gen_range(1..50u64)))
            .collect();
        let width = rng.gen_range(1..200usize);
        let mut b = ExecutionModelBuilder::new("job");
        let root = b.root();
        let _ = b.child(root, "p", Repeat::Parallel);
        let model = b.build();
        let end = phases.iter().map(|&(s, d)| s + d).max().unwrap();
        let mut tb = TraceBuilder::new(&model);
        tb.add_phase(&[("job", 0)], 0, end * MILLIS, None, None).unwrap();
        for (k, &(s, d)) in phases.iter().enumerate() {
            tb.add_phase(
                &[("job", 0), ("p", k as u32)],
                s * MILLIS,
                (s + d).min(end) * MILLIS,
                Some(0),
                Some(k as u16),
            )
            .unwrap();
        }
        let trace = tb.build().unwrap();
        let out = render_gantt(
            &model,
            &trace,
            &GanttConfig {
                width,
                max_depth: 2,
                max_rows: 10,
            },
        );
        assert!(!out.is_empty(), "case {case}");
        // Row count respects the cap (+1 for the omission note).
        assert!(out.lines().count() <= 11, "case {case}");
    }
}
