//! Integration-scale version of the Table II experiment: the qualitative
//! claims of §IV-B must hold on a small workload so regressions in the
//! upsampling pipeline are caught by `cargo test`.

use grade10::core::attribution::{relative_sampling_error, UpsampleMode};
use grade10::engines::pregel::PregelConfig;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadRun, WorkloadSpec};

/// Ground truth interval (50 ms) is also the comparison timeslice.
const GT: u64 = 50_000_000;

fn giraph_run() -> WorkloadRun {
    run_workload(&WorkloadSpec {
        dataset: Dataset::Rmat { scale: 10, seed: 5 },
        algorithm: Algorithm::PageRank { iterations: 5 },
        engine: EngineKind::Giraph(PregelConfig {
            machines: 2,
            threads: 4,
            cores: 4.0,
            ..Default::default()
        }),
    })
}

fn cpu_error(run: &WorkloadRun, rules: &grade10::core::model::RuleSet, downsample: usize, mode: UpsampleMode) -> f64 {
    let profile = run.build_profile(rules, downsample, GT, mode);
    let mut up = Vec::new();
    let mut truth = Vec::new();
    for (r, res) in profile.resources.iter().enumerate() {
        if res.kind != "cpu" {
            continue;
        }
        let t = run
            .ground_truth()
            .iter()
            .find(|s| s.spec.kind.name() == "cpu" && Some(s.spec.machine) == res.machine)
            .unwrap();
        let n = profile.consumption[r].len().min(t.samples.len());
        up.extend_from_slice(&profile.consumption[r][..n]);
        truth.extend_from_slice(&t.samples[..n]);
    }
    relative_sampling_error(&up, &truth)
}

#[test]
fn upsampling_beats_strawman_at_recommended_ratio() {
    let run = giraph_run();
    let strawman = cpu_error(&run, &run.rules_tuned, 8, UpsampleMode::Constant);
    let tuned = cpu_error(&run, &run.rules_tuned, 8, UpsampleMode::DemandGuided);
    assert!(
        tuned < strawman,
        "tuned {tuned:.3} must beat the constant strawman {strawman:.3} at 8x"
    );
}

#[test]
fn tuned_rules_beat_untuned() {
    // At low ratios the two configurations are within noise of each other;
    // the paper's claim is about coarse monitoring, where the Exact rules'
    // extra knowledge pays. Allow a small tolerance at 8x and require a
    // clear win at 32x.
    let run = giraph_run();
    let untuned8 = cpu_error(&run, &run.rules_untuned, 8, UpsampleMode::DemandGuided);
    let tuned8 = cpu_error(&run, &run.rules_tuned, 8, UpsampleMode::DemandGuided);
    assert!(
        tuned8 <= untuned8 * 1.10 + 1e-9,
        "at 8x: tuned {tuned8:.3} !<= untuned {untuned8:.3} (+10%)"
    );
    let untuned32 = cpu_error(&run, &run.rules_untuned, 32, UpsampleMode::DemandGuided);
    let tuned32 = cpu_error(&run, &run.rules_tuned, 32, UpsampleMode::DemandGuided);
    assert!(
        tuned32 < untuned32,
        "at 32x: tuned {tuned32:.3} !< untuned {untuned32:.3}"
    );
}

#[test]
fn error_grows_with_coarseness() {
    let run = giraph_run();
    let e2 = cpu_error(&run, &run.rules_tuned, 2, UpsampleMode::DemandGuided);
    let e64 = cpu_error(&run, &run.rules_tuned, 64, UpsampleMode::DemandGuided);
    assert!(
        e64 > e2,
        "64x error {e64:.3} should exceed 2x error {e2:.3}"
    );
}

#[test]
fn perfect_reconstruction_at_no_downsampling() {
    // With downsample factor 1, each measurement covers exactly one slice,
    // so upsampling is the identity and error is ~0 regardless of rules.
    let run = giraph_run();
    let e = cpu_error(&run, &run.rules_untuned, 1, UpsampleMode::DemandGuided);
    assert!(e < 1e-9, "identity upsampling error {e}");
    let ec = cpu_error(&run, &run.rules_tuned, 1, UpsampleMode::Constant);
    assert!(ec < 1e-9, "identity constant error {ec}");
}
