//! End-to-end supervision: the hostile fault classes (`machine-missing`,
//! `timestamp-bomb`) and injected unit failures (panics, deadline
//! overruns) must degrade the characterization, never abort it. The
//! supervised pipeline always returns either a partial characterization
//! with incidents and coverage, or a classified recoverable error.

use std::sync::OnceLock;
use std::time::Duration;

use grade10::cluster::{FaultClass, FaultPlan};
use grade10::core::pipeline::CharacterizationConfig;
use grade10::core::supervise::{
    characterize_events_supervised, ChaosMode, ChaosPoint, IncidentKind, UnitStatus,
};
use grade10::core::trace::{IngestConfig, MILLIS};
use grade10::engines::bridge::{to_raw_events, to_raw_series};
use grade10::engines::pregel::PregelConfig;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadRun, WorkloadSpec};

fn tiny_run() -> &'static WorkloadRun {
    static RUN: OnceLock<WorkloadRun> = OnceLock::new();
    RUN.get_or_init(|| {
        run_workload(&WorkloadSpec {
            dataset: Dataset::Rmat { scale: 8, seed: 3 },
            algorithm: Algorithm::PageRank { iterations: 2 },
            engine: EngineKind::Giraph(PregelConfig {
                machines: 2,
                threads: 2,
                cores: 2.0,
                ..Default::default()
            }),
        })
    })
}

fn lenient_config() -> CharacterizationConfig {
    let mut cfg = CharacterizationConfig::default();
    cfg.profile.slice = 10 * MILLIS;
    cfg.profile.estimate_missing = true;
    cfg.ingest = IngestConfig::lenient();
    cfg
}

/// The CLI acceptance scenario: machine-missing + timestamp-bomb under
/// lenient supervised mode completes with per-machine coverage and at
/// least one incident attributable to each injected class.
#[test]
fn hostile_faults_yield_partial_characterization_with_incidents() {
    let run = tiny_run();
    let mut plan = FaultPlan::clean(7);
    plan.enable(FaultClass::MachineMissing);
    plan.enable(FaultClass::TimestampBomb);
    let events = to_raw_events(&plan.inject_logs(&run.sim.logs));
    let monitoring = to_raw_series(&plan.inject_series(&run.sim.series), 8);

    let p = characterize_events_supervised(
        &run.model,
        &run.rules_tuned,
        &events,
        &monitoring,
        &lenient_config(),
    )
    .expect("supervised lenient mode must absorb hostile faults");

    assert!(!p.is_complete(), "hostile faults must surface as incidents");
    // machine-missing: the silenced machine is covered from monitoring only.
    assert!(
        p.incidents.iter().any(|i| i.kind == IncidentKind::MissingData),
        "no missing-data incident for machine-missing: {:?}",
        p.incidents
    );
    // timestamp-bomb: the bombed monitoring interval is quarantined and the
    // bombed log timestamp trips the grid budget guard.
    assert!(
        p.incidents.iter().any(|i| {
            i.kind == IncidentKind::Quarantine || i.kind == IncidentKind::Budget
        }),
        "no quarantine/budget incident for timestamp-bomb: {:?}",
        p.incidents
    );
    // Per-machine coverage over both machines, none dropped: every unit
    // recovered under degradation.
    let machines: Vec<Option<u16>> = p.coverage.machines.iter().map(|m| m.machine).collect();
    assert!(machines.contains(&Some(0)) && machines.contains(&Some(1)));
    assert_eq!(p.coverage.machines_covered(), p.coverage.machines.len());
    // The characterization is real: a profile with resources and a makespan.
    assert!(!p.characterization.profile.resources.is_empty());
    assert!(p.characterization.base_makespan > 0);
}

/// Robustness sweep (the "never panics" property): every single fault
/// class, plus adversarial combinations including all eight at once, under
/// lenient supervised mode. Each run must return a characterization or a
/// recoverable error — no panic, no abort, and coverage must stay
/// well-formed.
#[test]
fn any_fault_combination_is_absorbed_or_classified() {
    let run = tiny_run();
    // Bitmask over FaultClass::ALL: all singles, the stream-damage set, the
    // hostile pair, alternating mixes, and everything at once.
    let masks: Vec<u8> = (0..8)
        .map(|b| 1u8 << b)
        .chain([0b0011_1111, 0b1100_0000, 0b1010_1010, 0b0101_0101, 0xFF])
        .collect();
    for (case, mask) in masks.into_iter().enumerate() {
        let mut plan = FaultPlan::clean(1000 + case as u64);
        for (bit, class) in FaultClass::ALL.into_iter().enumerate() {
            if mask & (1 << bit) != 0 {
                plan.enable(class);
            }
        }
        let events = to_raw_events(&plan.inject_logs(&run.sim.logs));
        let monitoring = to_raw_series(&plan.inject_series(&run.sim.series), 8);
        match characterize_events_supervised(
            &run.model,
            &run.rules_tuned,
            &events,
            &monitoring,
            &lenient_config(),
        ) {
            Ok(p) => {
                assert_eq!(
                    p.coverage.stages.len(),
                    5,
                    "case {case} (mask {mask:#010b}): malformed stage coverage"
                );
                assert!(
                    !p.coverage.machines.is_empty(),
                    "case {case} (mask {mask:#010b}): no machine coverage"
                );
            }
            Err(e) => assert!(
                e.is_recoverable(),
                "case {case} (mask {mask:#010b}): fatal error {e}"
            ),
        }
    }
}

/// An injected panic in one machine's attribution unit must not abort the
/// pipeline or lose the other machine's results.
#[test]
fn panic_in_one_unit_spares_other_units_results() {
    let run = tiny_run();
    let events = to_raw_events(&run.sim.logs);
    let monitoring = to_raw_series(&run.sim.series, 8);
    let mut cfg = lenient_config();
    cfg.supervise.max_retries = 1;
    cfg.supervise.chaos.push(ChaosPoint {
        unit: "attribute/machine 0".to_string(),
        mode: ChaosMode::Panic,
    });

    let p = characterize_events_supervised(
        &run.model,
        &run.rules_tuned,
        &events,
        &monitoring,
        &cfg,
    )
    .expect("a panicking unit must not abort the pipeline");

    let inc = p
        .incidents
        .iter()
        .find(|i| i.stage == "attribute" && i.unit == "machine 0")
        .expect("panic incident for the sabotaged unit");
    assert_eq!(inc.kind, IncidentKind::Panic);
    // Machine 1's resources survived in full; machine 0's are gone.
    assert!(p
        .characterization
        .profile
        .resources
        .iter()
        .all(|r| r.machine != Some(0)));
    assert!(p
        .characterization
        .profile
        .resources
        .iter()
        .any(|r| r.machine == Some(1)));
    let m0 = p
        .coverage
        .machines
        .iter()
        .find(|m| m.machine == Some(0))
        .expect("machine 0 coverage row");
    assert_eq!(m0.status, UnitStatus::Dropped);
    // Downstream stages still produced results from the surviving data.
    assert!(p.characterization.base_makespan > 0);
}

/// A deadline overrun in one whole-pipeline stage is abandoned and falls
/// back, leaving every per-machine result intact.
#[test]
fn deadline_overrun_in_one_stage_is_isolated() {
    let run = tiny_run();
    let events = to_raw_events(&run.sim.logs);
    let monitoring = to_raw_series(&run.sim.series, 8);
    let mut cfg = lenient_config();
    cfg.supervise.deadline = Some(Duration::from_millis(2000));
    cfg.supervise.max_retries = 0;
    cfg.supervise.chaos.push(ChaosPoint {
        unit: "issues".to_string(),
        mode: ChaosMode::Stall(Duration::from_secs(30)),
    });

    let p = characterize_events_supervised(
        &run.model,
        &run.rules_tuned,
        &events,
        &monitoring,
        &cfg,
    )
    .expect("a stalled stage must not abort the pipeline");

    let inc = p
        .incidents
        .iter()
        .find(|i| i.stage == "issues")
        .expect("deadline incident for the stalled stage");
    assert_eq!(inc.kind, IncidentKind::Deadline);
    // The stage fell back to "no issues"; everything upstream is intact.
    assert!(p.characterization.issues.is_empty());
    assert!(!p.characterization.profile.resources.is_empty());
    assert!(p.characterization.base_makespan > 0);
    assert_eq!(p.coverage.machines_covered(), p.coverage.machines.len());
}
