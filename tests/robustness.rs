//! Failure injection and degenerate-input robustness: corrupted logs,
//! monitoring gaps, misdeclared capacities, and extreme cluster shapes must
//! either produce clean errors or degrade gracefully — never panic or
//! silently fabricate data.

use grade10::core::attribution::{build_profile, ProfileConfig};
use grade10::core::bottleneck::{BottleneckConfig, BottleneckReport};
use grade10::core::model::{ExecutionModelBuilder, Repeat, RuleSet};
use grade10::core::parse::{build_execution_trace, RawEvent, RawEventKind};
use grade10::core::pipeline::{characterize, CharacterizationConfig};
use grade10::core::trace::{Measurement, ResourceInstance, ResourceTrace, TraceBuilder, MILLIS};
use grade10::engines::bridge::to_raw_events;
use grade10::engines::pregel::PregelConfig;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadSpec};

fn tiny_run() -> grade10::engines::WorkloadRun {
    run_workload(&WorkloadSpec {
        dataset: Dataset::Rmat { scale: 9, seed: 3 },
        algorithm: Algorithm::PageRank { iterations: 2 },
        engine: EngineKind::Giraph(PregelConfig {
            machines: 2,
            threads: 2,
            cores: 2.0,
            ..Default::default()
        }),
    })
}

#[test]
fn truncated_log_stream_is_a_clean_error() {
    let run = tiny_run();
    let mut events = to_raw_events(&run.sim.logs);
    // Cut the stream mid-run: some phases never end.
    events.truncate(events.len() / 2);
    let err = build_execution_trace(&run.model, &events).unwrap_err();
    assert!(err.detail().contains("never ended"), "unexpected error: {err}");
}

#[test]
fn orphan_events_are_clean_errors() {
    let run = tiny_run();
    let mut events = to_raw_events(&run.sim.logs);
    // Drop the very first event (the job's PhaseStart): its end is now
    // an end-without-start.
    events.remove(0);
    let err = build_execution_trace(&run.model, &events).unwrap_err();
    assert!(
        err.detail().contains("without starting") || err.detail().contains("parent instance"),
        "unexpected error: {err}"
    );
}

#[test]
fn foreign_phase_names_are_clean_errors() {
    let run = tiny_run();
    let mut events = to_raw_events(&run.sim.logs);
    for ev in &mut events {
        if let RawEventKind::PhaseStart { path } | RawEventKind::PhaseEnd { path } =
            &mut ev.kind
        {
            for seg in path.iter_mut() {
                if seg.0 == "superstep" {
                    seg.0 = "mystery".to_string();
                }
            }
        }
    }
    let err = build_execution_trace(&run.model, &events).unwrap_err();
    assert!(err.detail().contains("unknown phase type"), "unexpected error: {err}");
}

#[test]
fn monitoring_gaps_degrade_gracefully() {
    // Drop every other measurement window: the profile must still build,
    // conserve what was measured, and keep consumption within capacity.
    let run = tiny_run();
    let full = run.resource_trace(8);
    let mut gappy = ResourceTrace::new();
    for (ri, res) in full.instances().iter().enumerate() {
        let idx = gappy.add_resource(res.clone());
        for (k, m) in full
            .measurements(grade10::core::trace::ResourceIdx(ri as u32))
            .iter()
            .enumerate()
        {
            if k % 2 == 0 {
                gappy.add_measurement(idx, *m);
            }
        }
    }
    let profile = build_profile(
        &run.model,
        &run.rules_tuned,
        &run.trace,
        &gappy,
        &ProfileConfig::default(),
    );
    for (r, res) in profile.resources.iter().enumerate() {
        let measured = gappy.total_consumption(grade10::core::trace::ResourceIdx(r as u32));
        let upsampled: f64 =
            profile.consumption[r].iter().sum::<f64>() * profile.grid.slice_secs();
        assert!(
            (measured - upsampled - profile.overflow[r]).abs() < 1e-6 + measured * 1e-9,
            "{} not conserved under gaps",
            res.label()
        );
    }
    // The rest of the pipeline keeps working on the gappy profile.
    let report = BottleneckReport::build(&run.trace, &profile, &BottleneckConfig::default());
    let _ = report.blocked_time_by_type(&run.trace);
}

#[test]
fn misdeclared_capacity_surfaces_as_overflow() {
    // Declare the CPU half as big as it really is: the measured usage
    // cannot fit and must be reported, not silently clipped.
    let run = tiny_run();
    let full = run.resource_trace(8);
    let mut wrong = ResourceTrace::new();
    for (ri, res) in full.instances().iter().enumerate() {
        let mut res = res.clone();
        if res.kind == "cpu" {
            res.capacity /= 4.0;
        }
        let idx = wrong.add_resource(res);
        for m in full.measurements(grade10::core::trace::ResourceIdx(ri as u32)) {
            wrong.add_measurement(idx, *m);
        }
    }
    let profile = build_profile(
        &run.model,
        &run.rules_tuned,
        &run.trace,
        &wrong,
        &ProfileConfig::default(),
    );
    let cpu_overflow: f64 = profile
        .resources
        .iter()
        .enumerate()
        .filter(|(_, r)| r.kind == "cpu")
        .map(|(r, _)| profile.overflow[r])
        .sum();
    assert!(
        cpu_overflow > 0.0,
        "under-declared capacity must surface as overflow"
    );
    for (r, res) in profile.resources.iter().enumerate() {
        for &c in &profile.consumption[r] {
            assert!(c <= res.capacity * (1.0 + 1e-9));
        }
    }
}

#[test]
fn zero_length_phases_are_tolerated() {
    let mut b = ExecutionModelBuilder::new("job");
    let r = b.root();
    b.child(r, "p", Repeat::Parallel);
    let model = b.build();
    let mut tb = TraceBuilder::new(&model);
    tb.add_phase(&[("job", 0)], 0, 100 * MILLIS, None, None).unwrap();
    // An instantaneous phase (start == end) plus a normal one.
    tb.add_phase(&[("job", 0), ("p", 0)], 50 * MILLIS, 50 * MILLIS, Some(0), Some(0))
        .unwrap();
    tb.add_phase(&[("job", 0), ("p", 1)], 0, 100 * MILLIS, Some(0), Some(1))
        .unwrap();
    let trace = tb.build().unwrap();
    let mut rt = ResourceTrace::new();
    let cpu = rt.add_resource(ResourceInstance {
        kind: "cpu".into(),
        machine: Some(0),
        capacity: 2.0,
    });
    rt.add_series(cpu, 0, 50 * MILLIS, &[1.0, 1.0]);
    let result = characterize(
        &model,
        &RuleSet::new(),
        &trace,
        &rt,
        &CharacterizationConfig::default(),
    );
    assert_eq!(result.base_makespan, 100 * MILLIS);
}

#[test]
fn monitoring_beyond_trace_end_extends_the_grid() {
    let model = ExecutionModelBuilder::new("job").build();
    let mut tb = TraceBuilder::new(&model);
    tb.add_phase(&[("job", 0)], 0, 30 * MILLIS, Some(0), Some(0)).unwrap();
    let trace = tb.build().unwrap();
    let mut rt = ResourceTrace::new();
    let cpu = rt.add_resource(ResourceInstance {
        kind: "cpu".into(),
        machine: Some(0),
        capacity: 2.0,
    });
    // Monitoring runs twice as long as the trace.
    rt.add_measurement(
        cpu,
        Measurement {
            start: 0,
            end: 60 * MILLIS,
            avg: 1.0,
        },
    );
    let profile = build_profile(&model, &RuleSet::new(), &trace, &rt, &ProfileConfig::default());
    assert_eq!(profile.grid.num_slices(), 6);
    let total: f64 = profile.consumption[0].iter().sum::<f64>() * profile.grid.slice_secs();
    assert!((total - 0.06).abs() < 1e-9, "total {total}");
}

#[test]
fn single_machine_single_thread_cluster_works_end_to_end() {
    let run = run_workload(&WorkloadSpec {
        dataset: Dataset::Rmat { scale: 8, seed: 3 },
        algorithm: Algorithm::Bfs { root: 0 },
        engine: EngineKind::Giraph(PregelConfig {
            machines: 1,
            threads: 1,
            cores: 1.0,
            ..Default::default()
        }),
    });
    // No peers: no remote messages, no network traffic.
    let net: f64 = run
        .sim
        .series
        .iter()
        .filter(|s| {
            s.spec.kind.name() == "net_out" || s.spec.kind.name() == "net_in"
        })
        .map(|s| s.total_consumption())
        .sum();
    assert_eq!(net, 0.0);
    let resources = run.resource_trace(4);
    let result = characterize(
        &run.model,
        &run.rules_tuned,
        &run.trace,
        &resources,
        &CharacterizationConfig::default(),
    );
    assert!(result.base_makespan > 0);
}

#[test]
fn duplicated_events_are_clean_errors() {
    let run = tiny_run();
    let mut events = to_raw_events(&run.sim.logs);
    let dup: Vec<RawEvent> = events
        .iter()
        .filter(|e| matches!(e.kind, RawEventKind::PhaseStart { .. }))
        .take(1)
        .cloned()
        .collect();
    events.extend(dup);
    let err = build_execution_trace(&run.model, &events).unwrap_err();
    assert!(err.detail().contains("started twice"), "unexpected error: {err}");
}
