//! The `grade10 campaign` subcommand end to end, binary included: a
//! SIGKILL mid-campaign must leave a resumable directory, `--resume` must
//! finish the matrix and produce a report byte-identical to an
//! uninterrupted run, and the process exit-code taxonomy (0 clean /
//! 2 partial / 1 fatal) must hold across the subcommand dispatch.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn grade10() -> Command {
    Command::new(env!("CARGO_BIN_EXE_grade10"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("g10-cli-{name}-{}", std::process::id()))
}

/// A 4-mix screening spec small enough for CI: 2 algorithms × 2 seeds.
const SPEC: &str = r#"
name = "cli-smoke"
algorithms = ["pr", "bfs"]
datasets = ["rmat:6"]
machines = [2]
seeds = [46, 47]
"#;

fn write_spec(dir: &Path) -> PathBuf {
    std::fs::create_dir_all(dir).expect("spec dir");
    let path = dir.join("spec.toml");
    std::fs::write(&path, SPEC).expect("write spec");
    path
}

fn run_campaign(spec: &Path, dir: &Path, resume: bool) -> std::process::Output {
    let mut cmd = grade10();
    cmd.arg("campaign")
        .arg("--spec")
        .arg(spec)
        .arg("--dir")
        .arg(dir)
        .arg("--threads")
        .arg("2");
    if resume {
        cmd.arg("--resume");
    }
    cmd.output().expect("run grade10 campaign")
}

#[test]
fn sigkill_mid_campaign_resumes_to_an_identical_report() {
    let root = tmp("kill");
    let _ = std::fs::remove_dir_all(&root);
    let spec = write_spec(&root);

    // Ground truth: the same campaign, never interrupted.
    let clean_dir = root.join("clean");
    let out = run_campaign(&spec, &clean_dir, false);
    assert!(
        out.status.success(),
        "uninterrupted campaign: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let want_txt = std::fs::read(clean_dir.join("report.txt")).expect("clean report.txt");
    let want_json = std::fs::read(clean_dir.join("report.json")).expect("clean report.json");

    // Chaos run: SIGKILL the process as soon as the journal holds a
    // durable completion marker, so the kill lands mid-campaign.
    let kill_dir = root.join("killed");
    let mut child = grade10()
        .arg("campaign")
        .arg("--spec")
        .arg(&spec)
        .arg("--dir")
        .arg(&kill_dir)
        .arg("--threads")
        .arg("1")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn campaign");
    let journal = kill_dir.join("journal.jsonl");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut exited_first = false;
    loop {
        if let Ok(bytes) = std::fs::read(&journal) {
            if bytes.windows(10).any(|w| w == b"\"finished\"") {
                break;
            }
        }
        if child.try_wait().expect("try_wait").is_some() {
            // The campaign beat the poller; the resume below then only
            // re-renders the report, which must still be byte-identical.
            exited_first = true;
            break;
        }
        assert!(Instant::now() < deadline, "no finished record within 120s");
        std::thread::sleep(Duration::from_millis(5));
    }
    if !exited_first {
        child.kill().expect("SIGKILL campaign");
    }
    let _ = child.wait();
    assert!(journal.exists(), "journal survives the kill");

    // Relaunching without --resume must refuse the live journal (exit 1).
    let refused = run_campaign(&spec, &kill_dir, false);
    assert_eq!(
        refused.status.code(),
        Some(1),
        "existing journal without --resume is fatal: {}",
        String::from_utf8_lossy(&refused.stderr)
    );

    // --resume finishes the matrix and reproduces the reference report.
    let resumed = run_campaign(&spec, &kill_dir, true);
    assert!(
        resumed.status.success(),
        "resume: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let got_txt = std::fs::read(kill_dir.join("report.txt")).expect("resumed report.txt");
    let got_json = std::fs::read(kill_dir.join("report.json")).expect("resumed report.json");
    assert_eq!(got_txt, want_txt, "text report byte-identical after kill+resume");
    assert_eq!(got_json, want_json, "json report byte-identical after kill+resume");

    // The resumed stderr accounting shows the cache actually served mixes
    // (unless the process won the race and finished everything itself).
    if !exited_first {
        let stderr = String::from_utf8_lossy(&resumed.stderr);
        assert!(
            stderr.contains("cached"),
            "resume reports cache accounting: {stderr}"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

fn count_finished(journal: &Path) -> usize {
    std::fs::read(journal)
        .map(|b| b.windows(10).filter(|w| w == b"\"finished\"").count())
        .unwrap_or(0)
}

/// Waits until the journal holds more than `above` finished markers, or
/// every process in `fleet` has exited.
fn wait_for_finished(journal: &Path, above: usize, fleet: &mut [std::process::Child]) -> bool {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if count_finished(journal) > above {
            return true;
        }
        if fleet
            .iter_mut()
            .all(|c| c.try_wait().expect("try_wait").is_some())
        {
            return false;
        }
        assert!(Instant::now() < deadline, "no progress within 120s");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The kill matrix from the crash-tolerance issue, end to end with real
/// processes: a single-worker reference, a `--workers 3` fleet, and a
/// leader + two `--join` peers where both peers are SIGKILLed mid-run —
/// every variant must converge to the byte-identical ranked report, and
/// `--status` must stay safe to run while workers are live.
#[test]
fn multi_worker_fleet_survives_sigkills_and_reproduces_the_reference_report() {
    let root = tmp("fleet");
    let _ = std::fs::remove_dir_all(&root);
    let spec = write_spec(&root);

    // Width 1, never interrupted: the ground truth.
    let reference_dir = root.join("w1");
    let out = run_campaign(&spec, &reference_dir, false);
    assert!(
        out.status.success(),
        "single-worker reference: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let want_txt = std::fs::read(reference_dir.join("report.txt")).expect("reference report.txt");
    let want_json = std::fs::read(reference_dir.join("report.json")).expect("reference report.json");

    // Width 3 via --workers, unkilled: the leader spawns two peers and
    // waits for them.
    let spawn_dir = root.join("w3");
    let out = grade10()
        .args(["campaign", "--spec"])
        .arg(&spec)
        .arg("--dir")
        .arg(&spawn_dir)
        .args(["--threads", "1", "--workers", "3"])
        .output()
        .expect("run --workers 3");
    assert!(
        out.status.success(),
        "--workers 3: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    for peer in ["worker-2.log", "worker-3.log"] {
        assert!(spawn_dir.join(peer).exists(), "{peer} captured");
    }
    assert_eq!(
        std::fs::read(spawn_dir.join("report.txt")).expect("w3 report"),
        want_txt,
        "3-worker report byte-identical to single-worker"
    );

    // Width 3 via explicit --join peers, with a deterministic kill
    // schedule: SIGKILL one peer after the first finished marker, the
    // second peer after the next. Short leases keep reclaim fast.
    let kill_dir = root.join("killed");
    let lease = ["--lease-ms", "800"];
    let mut leader = grade10()
        .args(["campaign", "--spec"])
        .arg(&spec)
        .arg("--dir")
        .arg(&kill_dir)
        .args(["--threads", "1", "--worker", "lead"])
        .args(lease)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn leader");
    let mut peers: Vec<std::process::Child> = (0..2)
        .map(|i| {
            grade10()
                .args(["campaign", "--join"])
                .arg(&kill_dir)
                .args(["--threads", "1", "--worker", &format!("peer{i}")])
                .args(lease)
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn peer")
        })
        .collect();
    let journal = kill_dir.join("journal.jsonl");

    let mut fleet_alive = true;
    for victim in 0..2usize {
        if !wait_for_finished(&journal, victim, &mut peers) {
            // The fleet drained the 4-mix matrix before the schedule got
            // this far; the determinism assertions below still bind.
            fleet_alive = false;
            break;
        }
        let _ = peers[victim].kill();
        let _ = peers[victim].wait();
    }

    // --status is read-only and safe while workers are live (or just
    // finished — either way it must not disturb the campaign).
    let status = grade10()
        .args(["campaign", "--status"])
        .arg(&kill_dir)
        .output()
        .expect("run --status");
    assert!(
        status.status.success(),
        "--status during the fleet: {}",
        String::from_utf8_lossy(&status.stderr)
    );
    let status_out = String::from_utf8_lossy(&status.stdout);
    assert!(
        status_out.contains("mixes done"),
        "--status prints progress: {status_out}"
    );

    let leader_status = leader.wait().expect("leader exit");
    assert!(
        leader_status.success(),
        "the surviving leader drains the matrix alone (fleet alive: {fleet_alive})"
    );
    for mut p in peers {
        let _ = p.wait();
    }

    // A final resume is a no-op epoch that re-renders the same report.
    let resumed = run_campaign(&spec, &kill_dir, true);
    assert!(
        resumed.status.success(),
        "post-kill resume: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        std::fs::read(kill_dir.join("report.txt")).expect("killed report.txt"),
        want_txt,
        "kill schedule never changes the ranked report"
    );
    assert_eq!(
        std::fs::read(kill_dir.join("report.json")).expect("killed report.json"),
        want_json,
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Two real processes finishing the same mix hash leave exactly one
/// valid store artifact. The race is staged by SIGSTOPping the leader
/// mid-mix so its lease expires, letting a joiner reclaim and finish the
/// mix, then SIGCONTing the leader to complete its now-stale attempt —
/// both write the artifact, writes are pid-qualified and atomic, and
/// replay resolves the double completion idempotently.
#[test]
fn concurrent_finish_of_one_mix_leaves_a_single_valid_artifact() {
    let root = tmp("race");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("root");
    let spec = root.join("spec.toml");
    std::fs::write(
        &spec,
        "name = \"race\"\nalgorithms = [\"pr\"]\ndatasets = [\"rmat:6\"]\nmachines = [2]\nseeds = [46]\n",
    )
    .expect("write spec");
    let dir = root.join("run");

    let mut leader = grade10()
        .args(["campaign", "--spec"])
        .arg(&spec)
        .arg("--dir")
        .arg(&dir)
        .args(["--threads", "1", "--worker", "lead", "--lease-ms", "300"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn leader");

    // Freeze the leader the moment it claims the mix (best effort: if the
    // mix outruns the poller, the joiner is served from the store and the
    // artifact assertions below still bind).
    let journal = dir.join("journal.jsonl");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let bytes = std::fs::read(&journal).unwrap_or_default();
        if bytes.windows(9).any(|w| w == b"\"claimed\"") {
            break;
        }
        if leader.try_wait().expect("try_wait").is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "no claim within 120s");
        std::thread::sleep(Duration::from_millis(2));
    }
    let frozen = leader.try_wait().expect("try_wait").is_none();
    if frozen {
        let stop = Command::new("kill")
            .args(["-STOP", &leader.id().to_string()])
            .status()
            .expect("SIGSTOP leader");
        assert!(stop.success(), "SIGSTOP delivered");
    }

    let joiner = grade10()
        .args(["campaign", "--join"])
        .arg(&dir)
        .args(["--threads", "1", "--worker", "peer", "--lease-ms", "300"])
        .output()
        .expect("run joiner");
    assert!(
        joiner.status.success(),
        "joiner reclaims the expired lease and finishes: {}",
        String::from_utf8_lossy(&joiner.stderr)
    );

    if frozen {
        let cont = Command::new("kill")
            .args(["-CONT", &leader.id().to_string()])
            .status()
            .expect("SIGCONT leader");
        assert!(cont.success(), "SIGCONT delivered");
    }
    let leader_status = leader.wait().expect("leader exit");
    assert!(
        leader_status.success(),
        "the thawed leader completes its stale attempt idempotently"
    );

    // Exactly one artifact, fully written: no torn temp files, nothing
    // quarantined by the hash check, valid JSON content.
    let store = dir.join("store");
    let entries: Vec<String> = std::fs::read_dir(&store)
        .expect("store dir")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    let artifacts: Vec<&String> = entries.iter().filter(|n| n.ends_with(".json")).collect();
    assert_eq!(artifacts.len(), 1, "one mix, one artifact: {entries:?}");
    assert!(
        entries.iter().all(|n| !n.ends_with(".tmp")),
        "no torn temp files survive: {entries:?}"
    );
    assert!(
        entries.iter().all(|n| !n.ends_with(".quarantined")),
        "neither writer corrupted the artifact: {entries:?}"
    );
    let body = std::fs::read_to_string(store.join(artifacts[0])).expect("read artifact");
    assert!(
        body.starts_with('{') && body.trim_end().ends_with('}') && body.contains("makespan"),
        "artifact is one complete JSON outcome"
    );
    assert!(dir.join("report.txt").exists(), "report rendered");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn exit_code_taxonomy_holds_across_subcommand_dispatch() {
    let root = tmp("exits");
    let _ = std::fs::remove_dir_all(&root);
    let spec = write_spec(&root);

    // 0: clean campaign.
    let clean = run_campaign(&spec, &root.join("ok"), false);
    assert_eq!(
        clean.status.code(),
        Some(0),
        "clean campaign exits 0: {}",
        String::from_utf8_lossy(&clean.stderr)
    );
    // ... and a clean resume of it stays 0.
    let resumed = run_campaign(&spec, &root.join("ok"), true);
    assert_eq!(resumed.status.code(), Some(0));

    // 2: a supervised run with incidents still exits partial after the
    // subcommand dispatch gained the campaign arm.
    let partial = grade10()
        .args(["demo", "--partial", "--inject", "hostile", "--dataset", "rmat:6"])
        .output()
        .expect("run demo --partial");
    assert_eq!(
        partial.status.code(),
        Some(2),
        "supervised demo with hostile faults exits 2: {}",
        String::from_utf8_lossy(&partial.stderr)
    );

    // 1: fatal usage and spec errors.
    let missing_spec = run_campaign(&root.join("nope.toml"), &root.join("x"), false);
    assert_eq!(missing_spec.status.code(), Some(1), "unreadable spec is fatal");
    let no_args = grade10().arg("campaign").output().expect("run");
    assert_eq!(no_args.status.code(), Some(1), "missing --spec/--dir is fatal");
    let bad_spec = root.join("bad.toml");
    std::fs::write(&bad_spec, "name = \"x\"\nalgorithms = [\"pr\"]\n").expect("write");
    let bad = run_campaign(&bad_spec, &root.join("y"), false);
    assert_eq!(
        bad.status.code(),
        Some(1),
        "spec missing a required axis is fatal: {}",
        String::from_utf8_lossy(&bad.stderr)
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn campaign_validates_every_mix_before_running_any() {
    let root = tmp("validate");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("dir");
    let spec = root.join("spec.toml");
    std::fs::write(
        &spec,
        "name = \"v\"\nalgorithms = [\"pr\", \"zork\"]\ndatasets = [\"rmat:6\"]\n",
    )
    .expect("write spec");
    let dir = root.join("run");
    let out = run_campaign(&spec, &dir, false);
    assert_eq!(out.status.code(), Some(1), "unknown algorithm is fatal up front");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("zork"), "error names the bad mix: {stderr}");
    assert!(
        !dir.join("journal.jsonl").exists(),
        "nothing ran: validation precedes the journal"
    );
    let _ = std::fs::remove_dir_all(&root);
}
