//! The `grade10 campaign` subcommand end to end, binary included: a
//! SIGKILL mid-campaign must leave a resumable directory, `--resume` must
//! finish the matrix and produce a report byte-identical to an
//! uninterrupted run, and the process exit-code taxonomy (0 clean /
//! 2 partial / 1 fatal) must hold across the subcommand dispatch.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn grade10() -> Command {
    Command::new(env!("CARGO_BIN_EXE_grade10"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("g10-cli-{name}-{}", std::process::id()))
}

/// A 4-mix screening spec small enough for CI: 2 algorithms × 2 seeds.
const SPEC: &str = r#"
name = "cli-smoke"
algorithms = ["pr", "bfs"]
datasets = ["rmat:6"]
machines = [2]
seeds = [46, 47]
"#;

fn write_spec(dir: &Path) -> PathBuf {
    std::fs::create_dir_all(dir).expect("spec dir");
    let path = dir.join("spec.toml");
    std::fs::write(&path, SPEC).expect("write spec");
    path
}

fn run_campaign(spec: &Path, dir: &Path, resume: bool) -> std::process::Output {
    let mut cmd = grade10();
    cmd.arg("campaign")
        .arg("--spec")
        .arg(spec)
        .arg("--dir")
        .arg(dir)
        .arg("--threads")
        .arg("2");
    if resume {
        cmd.arg("--resume");
    }
    cmd.output().expect("run grade10 campaign")
}

#[test]
fn sigkill_mid_campaign_resumes_to_an_identical_report() {
    let root = tmp("kill");
    let _ = std::fs::remove_dir_all(&root);
    let spec = write_spec(&root);

    // Ground truth: the same campaign, never interrupted.
    let clean_dir = root.join("clean");
    let out = run_campaign(&spec, &clean_dir, false);
    assert!(
        out.status.success(),
        "uninterrupted campaign: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let want_txt = std::fs::read(clean_dir.join("report.txt")).expect("clean report.txt");
    let want_json = std::fs::read(clean_dir.join("report.json")).expect("clean report.json");

    // Chaos run: SIGKILL the process as soon as the journal holds a
    // durable completion marker, so the kill lands mid-campaign.
    let kill_dir = root.join("killed");
    let mut child = grade10()
        .arg("campaign")
        .arg("--spec")
        .arg(&spec)
        .arg("--dir")
        .arg(&kill_dir)
        .arg("--threads")
        .arg("1")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn campaign");
    let journal = kill_dir.join("journal.jsonl");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut exited_first = false;
    loop {
        if let Ok(bytes) = std::fs::read(&journal) {
            if bytes.windows(10).any(|w| w == b"\"finished\"") {
                break;
            }
        }
        if child.try_wait().expect("try_wait").is_some() {
            // The campaign beat the poller; the resume below then only
            // re-renders the report, which must still be byte-identical.
            exited_first = true;
            break;
        }
        assert!(Instant::now() < deadline, "no finished record within 120s");
        std::thread::sleep(Duration::from_millis(5));
    }
    if !exited_first {
        child.kill().expect("SIGKILL campaign");
    }
    let _ = child.wait();
    assert!(journal.exists(), "journal survives the kill");

    // Relaunching without --resume must refuse the live journal (exit 1).
    let refused = run_campaign(&spec, &kill_dir, false);
    assert_eq!(
        refused.status.code(),
        Some(1),
        "existing journal without --resume is fatal: {}",
        String::from_utf8_lossy(&refused.stderr)
    );

    // --resume finishes the matrix and reproduces the reference report.
    let resumed = run_campaign(&spec, &kill_dir, true);
    assert!(
        resumed.status.success(),
        "resume: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let got_txt = std::fs::read(kill_dir.join("report.txt")).expect("resumed report.txt");
    let got_json = std::fs::read(kill_dir.join("report.json")).expect("resumed report.json");
    assert_eq!(got_txt, want_txt, "text report byte-identical after kill+resume");
    assert_eq!(got_json, want_json, "json report byte-identical after kill+resume");

    // The resumed stderr accounting shows the cache actually served mixes
    // (unless the process won the race and finished everything itself).
    if !exited_first {
        let stderr = String::from_utf8_lossy(&resumed.stderr);
        assert!(
            stderr.contains("cached"),
            "resume reports cache accounting: {stderr}"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn exit_code_taxonomy_holds_across_subcommand_dispatch() {
    let root = tmp("exits");
    let _ = std::fs::remove_dir_all(&root);
    let spec = write_spec(&root);

    // 0: clean campaign.
    let clean = run_campaign(&spec, &root.join("ok"), false);
    assert_eq!(
        clean.status.code(),
        Some(0),
        "clean campaign exits 0: {}",
        String::from_utf8_lossy(&clean.stderr)
    );
    // ... and a clean resume of it stays 0.
    let resumed = run_campaign(&spec, &root.join("ok"), true);
    assert_eq!(resumed.status.code(), Some(0));

    // 2: a supervised run with incidents still exits partial after the
    // subcommand dispatch gained the campaign arm.
    let partial = grade10()
        .args(["demo", "--partial", "--inject", "hostile", "--dataset", "rmat:6"])
        .output()
        .expect("run demo --partial");
    assert_eq!(
        partial.status.code(),
        Some(2),
        "supervised demo with hostile faults exits 2: {}",
        String::from_utf8_lossy(&partial.stderr)
    );

    // 1: fatal usage and spec errors.
    let missing_spec = run_campaign(&root.join("nope.toml"), &root.join("x"), false);
    assert_eq!(missing_spec.status.code(), Some(1), "unreadable spec is fatal");
    let no_args = grade10().arg("campaign").output().expect("run");
    assert_eq!(no_args.status.code(), Some(1), "missing --spec/--dir is fatal");
    let bad_spec = root.join("bad.toml");
    std::fs::write(&bad_spec, "name = \"x\"\nalgorithms = [\"pr\"]\n").expect("write");
    let bad = run_campaign(&bad_spec, &root.join("y"), false);
    assert_eq!(
        bad.status.code(),
        Some(1),
        "spec missing a required axis is fatal: {}",
        String::from_utf8_lossy(&bad.stderr)
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn campaign_validates_every_mix_before_running_any() {
    let root = tmp("validate");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("dir");
    let spec = root.join("spec.toml");
    std::fs::write(
        &spec,
        "name = \"v\"\nalgorithms = [\"pr\", \"zork\"]\ndatasets = [\"rmat:6\"]\n",
    )
    .expect("write spec");
    let dir = root.join("run");
    let out = run_campaign(&spec, &dir, false);
    assert_eq!(out.status.code(), Some(1), "unknown algorithm is fatal up front");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("zork"), "error names the bad mix: {stderr}");
    assert!(
        !dir.join("journal.jsonl").exists(),
        "nothing ran: validation precedes the journal"
    );
    let _ = std::fs::remove_dir_all(&root);
}
