//! Seed stability: the qualitative claims behind the paper-shape
//! experiments must hold across random seeds, not just for the one the
//! benches print. Each test runs a scaled-down experiment at several seeds
//! and asserts the *invariant*, not the numbers.

use grade10::core::attribution::{relative_sampling_error, UpsampleMode};
use grade10::core::issues::imbalance::imbalance_issue;
use grade10::core::replay::ReplayConfig;
use grade10::engines::gas::GasConfig;
use grade10::engines::pregel::PregelConfig;
use grade10::engines::workload::EnginePhases;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadRun, WorkloadSpec};

const SEEDS: [u64; 3] = [11, 46, 1234];

fn giraph(seed: u64) -> WorkloadRun {
    run_workload(&WorkloadSpec {
        dataset: Dataset::Rmat { scale: 10, seed },
        algorithm: Algorithm::PageRank { iterations: 4 },
        engine: EngineKind::Giraph(PregelConfig {
            machines: 2,
            threads: 4,
            cores: 4.0,
            // The scaled-down run allocates less; shrink the heap so GC
            // still triggers (as on the full-size configuration).
            gc: Some(grade10::cluster::GcConfig {
                heap_bytes: 1.5e8,
                trigger_fraction: 0.8,
                pause_per_byte: 0.3 / 1e9,
                min_pause_secs: 0.045,
                live_fraction: 0.25,
            }),
            ..Default::default()
        }),
    })
}

fn powergraph(seed: u64) -> WorkloadRun {
    run_workload(&WorkloadSpec {
        dataset: Dataset::Social {
            vertices: 3000,
            seed,
        },
        algorithm: Algorithm::Cdlp { iterations: 5 },
        engine: EngineKind::PowerGraph(GasConfig {
            machines: 2,
            threads: 4,
            cores: 4.0,
            seed,
            ..Default::default()
        }),
    })
}

/// Table II's headline ordering — demand-guided upsampling beats the
/// constant strawman at the recommended 8× ratio — for every seed.
#[test]
fn upsampling_beats_strawman_across_seeds() {
    for seed in SEEDS {
        let run = giraph(seed);
        let err = |mode| {
            let profile = run.build_profile(&run.rules_tuned, 8, 50_000_000, mode);
            let mut up = Vec::new();
            let mut truth = Vec::new();
            for (r, res) in profile.resources.iter().enumerate() {
                if res.kind != "cpu" {
                    continue;
                }
                let t = run
                    .ground_truth()
                    .iter()
                    .find(|s| {
                        s.spec.kind.name() == "cpu" && Some(s.spec.machine) == res.machine
                    })
                    .unwrap();
                let n = profile.consumption[r].len().min(t.samples.len());
                up.extend_from_slice(&profile.consumption[r][..n]);
                truth.extend_from_slice(&t.samples[..n]);
            }
            relative_sampling_error(&up, &truth)
        };
        let tuned = err(UpsampleMode::DemandGuided);
        let strawman = err(UpsampleMode::Constant);
        assert!(
            tuned < strawman,
            "seed {seed}: tuned {tuned:.3} !< strawman {strawman:.3}"
        );
    }
}

/// Fig. 5's headline ordering — gather imbalance dominates apply and
/// scatter imbalance for CDLP — for every seed.
#[test]
fn gather_imbalance_dominates_across_seeds() {
    for seed in SEEDS {
        let run = powergraph(seed);
        let p = match run.phases {
            EnginePhases::Gas(p) => p,
            _ => unreachable!(),
        };
        let cfg = ReplayConfig::default();
        let gather = imbalance_issue(&run.model, &run.trace, p.gather_thread, &cfg).reduction;
        let apply = imbalance_issue(&run.model, &run.trace, p.apply_thread, &cfg).reduction;
        let scatter = imbalance_issue(&run.model, &run.trace, p.scatter_thread, &cfg).reduction;
        assert!(
            gather > apply && gather > scatter,
            "seed {seed}: gather {gather:.3} must dominate apply {apply:.3} and \
             scatter {scatter:.3}"
        );
    }
}

/// The architectural contrast of §IV-C — Giraph GCs and stalls on queues,
/// PowerGraph never does — for every seed.
#[test]
fn architectural_contrast_across_seeds() {
    for seed in SEEDS {
        let g = giraph(seed);
        assert!(
            !g.sim.stats.gc_pauses.is_empty(),
            "seed {seed}: Giraph-like engine must GC"
        );
        let p = powergraph(seed);
        assert!(p.sim.stats.gc_pauses.is_empty());
        assert_eq!(
            p.sim.stats.queue_stall_time,
            grade10::cluster::SimDuration::ZERO
        );
    }
}
