//! Degraded-node scenario: one machine in the cluster computes 60 % slower.
//! Grade10's imbalance analysis must surface the straggler — both as a
//! larger balance-the-threads win and as a consistently slower machine in
//! the per-worker statistics (the cross-worker skew of the paper's Fig. 6).

use grade10::core::issues::imbalance::{imbalance_groups, imbalance_issue};
use grade10::core::replay::ReplayConfig;
use grade10::engines::pregel::PregelConfig;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadRun, WorkloadSpec};

const SLOW_MACHINE: usize = 1;

fn run(factor: f64) -> WorkloadRun {
    let mut work_factor = vec![1.0; 2];
    work_factor[SLOW_MACHINE] = factor;
    run_workload(&WorkloadSpec {
        dataset: Dataset::Rmat { scale: 10, seed: 7 },
        algorithm: Algorithm::PageRank { iterations: 4 },
        engine: EngineKind::Giraph(PregelConfig {
            machines: 2,
            threads: 4,
            cores: 4.0,
            machine_work_factor: work_factor,
            ..Default::default()
        }),
    })
}

#[test]
fn straggler_machine_slows_the_whole_job() {
    let healthy = run(1.0);
    let degraded = run(1.6);
    assert!(
        degraded.sim.end_time > healthy.sim.end_time,
        "degraded {} !> healthy {}",
        degraded.sim.end_time,
        healthy.sim.end_time
    );
}

#[test]
fn imbalance_analysis_quantifies_the_degradation() {
    let healthy = run(1.0);
    let degraded = run(1.6);
    let thread_ty = healthy.model.find_by_name("thread").unwrap();
    let cfg = ReplayConfig::default();
    let h = imbalance_issue(&healthy.model, &healthy.trace, thread_ty, &cfg);
    let d = imbalance_issue(&degraded.model, &degraded.trace, thread_ty, &cfg);
    assert!(
        d.reduction > h.reduction + 0.05,
        "degraded imbalance {:.3} should clearly exceed healthy {:.3}",
        d.reduction,
        h.reduction
    );
}

#[test]
fn per_worker_medians_point_at_the_slow_machine() {
    let degraded = run(1.6);
    let thread_ty = degraded.model.find_by_name("thread").unwrap();
    let groups = imbalance_groups(&degraded.model, &degraded.trace, thread_ty);
    // In (almost) every superstep, the slow machine's median thread takes
    // longer than the healthy machine's.
    let mut slower = 0usize;
    let mut comparable = 0usize;
    for g in &groups {
        let healthy_median = g.machine_median(Some(0));
        let slow_median = g.machine_median(Some(SLOW_MACHINE as u16));
        if let (Some(h), Some(s)) = (healthy_median, slow_median) {
            comparable += 1;
            if s > h {
                slower += 1;
            }
        }
    }
    assert!(comparable >= 3, "need enough supersteps to compare");
    assert!(
        slower * 3 >= comparable * 2,
        "slow machine should have the higher median in most supersteps \
         ({slower}/{comparable})"
    );
}
