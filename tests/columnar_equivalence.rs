//! Behavioral pin of the columnar attribution core.
//!
//! The columnar core restructures attribution around contiguous
//! struct-of-arrays grids, scratch-buffer reuse, and a participant-major
//! attribution sweep. While the cell-major reference implementation was
//! still selectable (`AttributionBackend::Legacy`, retired after one PR
//! as scheduled), this suite proved both paths byte-identical over the
//! full fault matrix. The legacy path is gone; the same dumps now pin the
//! columnar output against **committed golden hashes**, so any bit-level
//! drift in the attribution core — demand estimation, upsampling,
//! attribution, merging — still fails loudly.
//!
//! The suite drives the 13-combination fault matrix through the
//! *supervised* pipeline — ingest repair, per-machine isolation,
//! estimate-missing hole filling, profile merging — at worker-pool widths
//! 1, 2, and 8, asserting (a) the complete characterization (incidents,
//! coverage, every profile float, every per-instance usage row) is
//! identical across widths, and (b) its FNV-1a hash per mask matches the
//! checked-in golden. Debug formatting round-trips `f64` exactly, so
//! string (and hence hash) equality is bit equality.
//!
//! Bless with `UPDATE_GOLDENS=1 cargo test --test columnar_equivalence`.
//!
//! Lives in its own integration-test binary because `GRADE10_THREADS` is
//! process-global.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

use grade10::cluster::{FaultClass, FaultPlan};
use grade10::core::config::Parallelism;
use grade10::core::hash::fnv1a;
use grade10::core::pipeline::CharacterizationConfig;
use grade10::core::supervise::{characterize_events_supervised, PartialCharacterization};
use grade10::core::trace::{IngestConfig, MILLIS};
use grade10::engines::bridge::{to_raw_events, to_raw_series};
use grade10::engines::pregel::PregelConfig;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadRun, WorkloadSpec};

fn tiny_run() -> &'static WorkloadRun {
    static RUN: OnceLock<WorkloadRun> = OnceLock::new();
    RUN.get_or_init(|| {
        run_workload(&WorkloadSpec {
            dataset: Dataset::Rmat { scale: 8, seed: 3 },
            algorithm: Algorithm::PageRank { iterations: 2 },
            engine: EngineKind::Giraph(PregelConfig {
                machines: 2,
                threads: 2,
                cores: 2.0,
                ..Default::default()
            }),
        })
    })
}

fn supervised_config() -> CharacterizationConfig {
    let mut cfg = CharacterizationConfig::default();
    cfg.profile.slice = 10 * MILLIS;
    cfg.profile.estimate_missing = true;
    cfg.ingest = IngestConfig::lenient();
    // Force the pool on even for this 3-unit workload, so the matrix
    // genuinely exercises concurrent units at every width.
    cfg.supervise.parallelism = Parallelism::Always;
    cfg
}

/// The same 13 fault combinations the supervision matrix uses: every
/// single class, then five multi-class mixtures up to all-eight.
fn fault_masks() -> Vec<u8> {
    (0..8)
        .map(|b| 1u8 << b)
        .chain([0b0011_1111, 0b1100_0000, 0b1010_1010, 0b0101_0101, 0xFF])
        .collect()
}

fn plan_for(mask: u8, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::clean(seed);
    for (bit, &class) in FaultClass::ALL.iter().enumerate() {
        if mask & (1 << bit) != 0 {
            plan.enable(class);
        }
    }
    plan
}

/// Exhaustive textual dump of a partial characterization: every incident,
/// the coverage ledgers, and every float the profile holds — the same
/// dump `supervision_determinism` pins across pool widths.
fn dump(p: &PartialCharacterization) -> String {
    let mut s = String::new();
    for i in &p.incidents {
        writeln!(s, "incident={i:?}").unwrap();
    }
    writeln!(s, "coverage={:?}", p.coverage).unwrap();
    let profile = &p.characterization.profile;
    writeln!(
        s,
        "slices={} resources={:?}",
        profile.grid.num_slices(),
        profile.resources
    )
    .unwrap();
    writeln!(s, "consumption={:?}", profile.consumption).unwrap();
    writeln!(s, "demand_exact={:?}", profile.demand_exact).unwrap();
    writeln!(s, "demand_variable={:?}", profile.demand_variable).unwrap();
    writeln!(s, "unattributed={:?}", profile.unattributed).unwrap();
    writeln!(s, "overflow={:?}", profile.overflow).unwrap();
    writeln!(s, "estimated={:?}", profile.estimated).unwrap();
    for u in &profile.usages {
        writeln!(s, "usage={u:?}").unwrap();
    }
    writeln!(s, "makespan={}", p.characterization.base_makespan).unwrap();
    writeln!(s, "ingest={:?}", p.characterization.ingest).unwrap();
    s
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name)
}

/// Diffs `actual` against the checked-in golden, or re-blesses it when
/// `UPDATE_GOLDENS=1` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDENS").ok().as_deref() == Some("1") {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {name} ({e}); bless it with UPDATE_GOLDENS=1")
    });
    if expected != actual {
        panic!(
            "attribution output drifted from golden {name}; re-bless with \
             UPDATE_GOLDENS=1 if intentional\n--- expected ---\n{expected}\
             \n--- actual ---\n{actual}"
        );
    }
}

/// Runs the whole fault matrix at one pool width and returns one dump per
/// mask. The env var pins the width; the config's `threads: None` defers
/// to it.
fn matrix_at(threads: &str) -> Vec<String> {
    std::env::set_var("GRADE10_THREADS", threads);
    let run = tiny_run();
    let cfg = supervised_config();
    let out = fault_masks()
        .into_iter()
        .map(|mask| {
            let plan = plan_for(mask, 0x5D_0000 + mask as u64);
            let events = to_raw_events(&plan.inject_logs(&run.sim.logs));
            let monitoring = to_raw_series(&plan.inject_series(&run.sim.series), 8);
            let p = characterize_events_supervised(
                &run.model,
                &run.rules_tuned,
                &events,
                &monitoring,
                &cfg,
            )
            .unwrap_or_else(|e| panic!("mask {mask:#010b} failed: {e}"));
            dump(&p)
        })
        .collect();
    std::env::remove_var("GRADE10_THREADS");
    out
}

/// One golden line per fault mask: the FNV-1a hash of the complete
/// characterization dump. Full dumps are megabytes; the hash pins the
/// same bits in a reviewable file.
fn hash_lines(dumps: &[String]) -> String {
    let mut s = String::new();
    for (mask, d) in fault_masks().iter().zip(dumps) {
        writeln!(s, "mask={mask:#010b} fnv1a={:016x}", fnv1a(d.as_bytes())).unwrap();
    }
    s
}

/// The behavioral pin: at every pool width the supervised fault matrix
/// reproduces the committed golden hashes bit for bit, and the widths
/// agree with each other on the full dumps (a sharper diagnostic than two
/// differing hashes when a width-dependence sneaks in).
#[test]
fn columnar_matrix_matches_goldens_across_widths() {
    let baseline = matrix_at("1");
    assert!(
        baseline.iter().any(|d| d.contains("incident=")),
        "matrix produced no incidents; the fixture is too tame to prove anything"
    );
    for threads in ["2", "8"] {
        let wide = matrix_at(threads);
        for (mask, (b, w)) in fault_masks().iter().zip(baseline.iter().zip(&wide)) {
            assert_eq!(
                b, w,
                "mask {mask:#010b}: width {threads} diverged from width 1"
            );
        }
    }
    check_golden("columnar_equivalence_hashes.txt", &hash_lines(&baseline));
}

/// `CODE_VERSION` moves in lockstep with the attribution goldens. The
/// campaign store and the stage cache both key durable artifacts on
/// `CODE_VERSION`; if attribution output changes (re-blessed goldens)
/// without a version bump, stale stores from the previous build would be
/// silently reused. This pin makes that a CI failure: re-blessing the
/// goldens changes their hash, so the literal below must be re-derived —
/// and the paired version literal forces the bump decision into review.
#[test]
fn code_version_is_tied_to_the_attribution_goldens() {
    let goldens = fs::read_to_string(golden_path("columnar_equivalence_hashes.txt"))
        .expect("committed golden")
        + &fs::read_to_string(golden_path("columnar_unsupervised_hash.txt"))
            .expect("committed golden");
    let tie = format!(
        "{} fnv1a={:016x}",
        grade10::core::campaign::CODE_VERSION,
        fnv1a(goldens.as_bytes())
    );
    assert_eq!(
        tie, "g10c-2 fnv1a=b93bcf2b12bfb1e8",
        "attribution goldens and CODE_VERSION moved out of lockstep. If the \
         goldens were intentionally re-blessed, bump CODE_VERSION in \
         crates/core/src/campaign/spec.rs (stored outcomes and stage-cache \
         records from the old build are stale) and update this pinned pair."
    );
}

/// The unsupervised single-process pipeline is pinned too — it skips the
/// per-machine split/merge, so it exercises one big grid end to end.
#[test]
fn columnar_unsupervised_matches_golden() {
    let run = tiny_run();
    let mut cfg = CharacterizationConfig::default();
    cfg.profile.slice = 10 * MILLIS;
    cfg.ingest = IngestConfig::lenient();
    let events = to_raw_events(&run.sim.logs);
    let monitoring = to_raw_series(&run.sim.series, 8);
    let input = grade10::core::trace::ingest(&run.model, &events, &monitoring, &cfg.ingest)
        .expect("clean fixture ingests");
    let result =
        grade10::core::pipeline::characterize_ingested(&run.model, &run.rules_tuned, &input, &cfg);
    let p = &result.profile;
    let dump = format!(
        "{:?}\n{:?}\n{:?}\n{:?}\n{:?}\n{}\n{:?}",
        p.consumption,
        p.demand_exact,
        p.demand_variable,
        p.unattributed,
        p.overflow,
        result.base_makespan,
        result
            .profile
            .usages
            .iter()
            .map(|u| format!("{u:?}"))
            .collect::<Vec<_>>()
    );
    let line = format!("unsupervised fnv1a={:016x}\n", fnv1a(dump.as_bytes()));
    check_golden("columnar_unsupervised_hash.txt", &line);
}
