//! Differential equivalence of the columnar and legacy attribution
//! backends.
//!
//! The columnar backend restructures the attribution core around
//! contiguous struct-of-arrays grids, scratch-buffer reuse, and a
//! participant-major attribution sweep. None of that may change a single
//! bit of output: this suite drives the full 13-combination fault matrix
//! through the *supervised* pipeline — ingest repair, per-machine
//! isolation, estimate-missing hole filling, profile merging — under both
//! backends at worker-pool widths 1, 2, and 8, and asserts the complete
//! characterization (incidents, coverage, every profile float, every
//! per-instance usage row) is identical byte for byte. Debug formatting
//! round-trips `f64` exactly, so string equality is bit equality.
//!
//! Lives in its own integration-test binary because `GRADE10_THREADS` is
//! process-global.

use std::fmt::Write as _;
use std::sync::OnceLock;

use grade10::cluster::{FaultClass, FaultPlan};
use grade10::core::attribution::AttributionBackend;
use grade10::core::config::Parallelism;
use grade10::core::pipeline::CharacterizationConfig;
use grade10::core::supervise::{characterize_events_supervised, PartialCharacterization};
use grade10::core::trace::{IngestConfig, MILLIS};
use grade10::engines::bridge::{to_raw_events, to_raw_series};
use grade10::engines::pregel::PregelConfig;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadRun, WorkloadSpec};

fn tiny_run() -> &'static WorkloadRun {
    static RUN: OnceLock<WorkloadRun> = OnceLock::new();
    RUN.get_or_init(|| {
        run_workload(&WorkloadSpec {
            dataset: Dataset::Rmat { scale: 8, seed: 3 },
            algorithm: Algorithm::PageRank { iterations: 2 },
            engine: EngineKind::Giraph(PregelConfig {
                machines: 2,
                threads: 2,
                cores: 2.0,
                ..Default::default()
            }),
        })
    })
}

fn supervised_config(backend: AttributionBackend) -> CharacterizationConfig {
    let mut cfg = CharacterizationConfig::default();
    cfg.profile.slice = 10 * MILLIS;
    cfg.profile.estimate_missing = true;
    cfg.profile.backend = backend;
    cfg.ingest = IngestConfig::lenient();
    // Force the pool on even for this 3-unit workload, so the matrix
    // genuinely exercises concurrent units at every width.
    cfg.supervise.parallelism = Parallelism::Always;
    cfg
}

/// The same 13 fault combinations the supervision matrix uses: every
/// single class, then five multi-class mixtures up to all-eight.
fn fault_masks() -> Vec<u8> {
    (0..8)
        .map(|b| 1u8 << b)
        .chain([0b0011_1111, 0b1100_0000, 0b1010_1010, 0b0101_0101, 0xFF])
        .collect()
}

fn plan_for(mask: u8, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::clean(seed);
    for (bit, &class) in FaultClass::ALL.iter().enumerate() {
        if mask & (1 << bit) != 0 {
            plan.enable(class);
        }
    }
    plan
}

/// Exhaustive textual dump of a partial characterization: every incident,
/// the coverage ledgers, and every float the profile holds — the same
/// dump `supervision_determinism` pins across pool widths.
fn dump(p: &PartialCharacterization) -> String {
    let mut s = String::new();
    for i in &p.incidents {
        writeln!(s, "incident={i:?}").unwrap();
    }
    writeln!(s, "coverage={:?}", p.coverage).unwrap();
    let profile = &p.characterization.profile;
    writeln!(
        s,
        "slices={} resources={:?}",
        profile.grid.num_slices(),
        profile.resources
    )
    .unwrap();
    writeln!(s, "consumption={:?}", profile.consumption).unwrap();
    writeln!(s, "demand_exact={:?}", profile.demand_exact).unwrap();
    writeln!(s, "demand_variable={:?}", profile.demand_variable).unwrap();
    writeln!(s, "unattributed={:?}", profile.unattributed).unwrap();
    writeln!(s, "overflow={:?}", profile.overflow).unwrap();
    writeln!(s, "estimated={:?}", profile.estimated).unwrap();
    for u in &profile.usages {
        writeln!(s, "usage={u:?}").unwrap();
    }
    writeln!(s, "makespan={}", p.characterization.base_makespan).unwrap();
    writeln!(s, "ingest={:?}", p.characterization.ingest).unwrap();
    s
}

/// Runs the whole fault matrix at one pool width under one backend and
/// returns one dump per mask. The env var pins the width; the config's
/// `threads: None` defers to it.
fn matrix_at(threads: &str, backend: AttributionBackend) -> Vec<String> {
    std::env::set_var("GRADE10_THREADS", threads);
    let run = tiny_run();
    let cfg = supervised_config(backend);
    let out = fault_masks()
        .into_iter()
        .map(|mask| {
            let plan = plan_for(mask, 0x5D_0000 + mask as u64);
            let events = to_raw_events(&plan.inject_logs(&run.sim.logs));
            let monitoring = to_raw_series(&plan.inject_series(&run.sim.series), 8);
            let p = characterize_events_supervised(
                &run.model,
                &run.rules_tuned,
                &events,
                &monitoring,
                &cfg,
            )
            .unwrap_or_else(|e| panic!("mask {mask:#010b} ({backend:?}) failed: {e}"));
            dump(&p)
        })
        .collect();
    std::env::remove_var("GRADE10_THREADS");
    out
}

/// The tentpole guarantee: at every pool width, the columnar backend's
/// output over the entire fault matrix is byte-identical to the legacy
/// backend's.
#[test]
fn columnar_equals_legacy_across_fault_matrix_and_widths() {
    for threads in ["1", "2", "8"] {
        let columnar = matrix_at(threads, AttributionBackend::Columnar);
        let legacy = matrix_at(threads, AttributionBackend::Legacy);
        assert!(
            columnar.iter().any(|d| d.contains("incident=")),
            "matrix produced no incidents; the fixture is too tame to prove anything"
        );
        for (mask, (c, l)) in fault_masks().iter().zip(columnar.iter().zip(&legacy)) {
            assert_eq!(
                c, l,
                "mask {mask:#010b} at width {threads}: columnar vs legacy diverged"
            );
        }
    }
}

/// The unsupervised single-process pipeline must agree too — it skips the
/// per-machine split/merge, so it exercises one big grid per backend.
#[test]
fn columnar_equals_legacy_unsupervised() {
    let run = tiny_run();
    let dump_with = |backend| {
        let mut cfg = CharacterizationConfig::default();
        cfg.profile.slice = 10 * MILLIS;
        cfg.profile.backend = backend;
        cfg.ingest = IngestConfig::lenient();
        let events = to_raw_events(&run.sim.logs);
        let monitoring = to_raw_series(&run.sim.series, 8);
        let input = grade10::core::trace::ingest(&run.model, &events, &monitoring, &cfg.ingest)
            .expect("clean fixture ingests");
        let result = grade10::core::pipeline::characterize_ingested(
            &run.model,
            &run.rules_tuned,
            &input,
            &cfg,
        );
        let p = &result.profile;
        format!(
            "{:?}\n{:?}\n{:?}\n{:?}\n{:?}\n{}\n{:?}",
            p.consumption,
            p.demand_exact,
            p.demand_variable,
            p.unattributed,
            p.overflow,
            result.base_makespan,
            result
                .profile
                .usages
                .iter()
                .map(|u| format!("{u:?}"))
                .collect::<Vec<_>>()
        )
    };
    assert_eq!(
        dump_with(AttributionBackend::Columnar),
        dump_with(AttributionBackend::Legacy)
    );
}
