//! End-to-end integration for the PowerGraph-like engine: architectural
//! contrasts with Giraph (§IV-C), imbalance analysis, and the
//! synchronization bug (§IV-D).

use grade10::core::attribution::UpsampleMode;
use grade10::core::bottleneck::{BottleneckConfig, BottleneckReport};
use grade10::core::issues::imbalance::{imbalance_groups, imbalance_issue};
use grade10::core::replay::ReplayConfig;
use grade10::engines::gas::{GasConfig, SyncBugConfig};
use grade10::engines::workload::EnginePhases;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadRun, WorkloadSpec};

const SLICE: u64 = 10_000_000;

fn small_config(bug: Option<SyncBugConfig>) -> GasConfig {
    GasConfig {
        machines: 2,
        threads: 4,
        cores: 4.0,
        sync_bug: bug,
        ..Default::default()
    }
}

fn run(bug: Option<SyncBugConfig>) -> WorkloadRun {
    run_workload(&WorkloadSpec {
        dataset: Dataset::Social {
            vertices: 3000,
            seed: 11,
        },
        algorithm: Algorithm::Cdlp { iterations: 6 },
        engine: EngineKind::PowerGraph(small_config(bug)),
    })
}

fn gas_phases(run: &WorkloadRun) -> grade10::engines::models::GasPhases {
    match run.phases {
        EnginePhases::Gas(p) => p,
        _ => unreachable!(),
    }
}

#[test]
fn architectural_contrast_no_gc_no_queue() {
    let run = run(None);
    assert!(run.sim.stats.gc_pauses.is_empty());
    assert_eq!(
        run.sim.stats.queue_stall_time,
        grade10::cluster::SimDuration::ZERO
    );
    let profile = run.build_profile(&run.rules_tuned, 8, SLICE, UpsampleMode::DemandGuided);
    let report = BottleneckReport::build(&run.trace, &profile, &BottleneckConfig::default());
    assert!(report
        .blocking
        .iter()
        .all(|b| b.resource != "gc" && b.resource != "msgq"));
}

#[test]
fn gas_stages_are_ordered_within_workers() {
    let run = run(None);
    let p = gas_phases(&run);
    // Within every (iteration, worker): gather ends before apply starts,
    // apply before scatter, scatter before exchange.
    let worker_ty = p.worker;
    for worker in run.trace.instances_of_type(worker_ty) {
        let child = |ty| {
            run.trace
                .children_of(worker.id)
                .iter()
                .map(|&c| run.trace.instance(c))
                .find(|i| i.type_id == ty)
        };
        let (g, a, s, e) = (
            child(p.gather).unwrap(),
            child(p.apply).unwrap(),
            child(p.scatter).unwrap(),
            child(p.exchange).unwrap(),
        );
        assert!(g.end <= a.start, "gather must precede apply");
        assert!(a.end <= s.start, "apply must precede scatter");
        assert!(s.end <= e.start, "scatter must precede exchange");
    }
}

#[test]
fn vertex_cut_sync_traffic_exists() {
    // CDLP updates labels; masters must push them to mirrors: the work
    // profile carries sync messages and the network sees traffic.
    let run = run(None);
    assert!(run.work.grand_total().sync_messages > 0);
    let net: f64 = run
        .sim
        .series
        .iter()
        .filter(|s| s.spec.kind.name() != "cpu")
        .map(|s| s.total_consumption())
        .sum();
    assert!(net > 0.0, "expected network traffic from replica sync");
}

#[test]
fn sync_bug_slows_affected_steps_and_whole_run() {
    let bug = SyncBugConfig {
        probability: 1.0,
        extra_min: 1.0,
        extra_max: 1.5,
    };
    let buggy = run(Some(bug));
    let fixed = run(None);
    assert!(!buggy.injected_bugs.is_empty());
    assert!(
        buggy.sim.end_time > fixed.sim.end_time,
        "bug must slow the run: {} vs {}",
        buggy.sim.end_time,
        fixed.sim.end_time
    );
    // Grade10's imbalance analysis must estimate a larger gather-balance
    // win on the buggy run.
    let pb = gas_phases(&buggy);
    let pf = gas_phases(&fixed);
    let rb = imbalance_issue(&buggy.model, &buggy.trace, pb.gather_thread, &ReplayConfig::default());
    let rf = imbalance_issue(&fixed.model, &fixed.trace, pf.gather_thread, &ReplayConfig::default());
    assert!(
        rb.reduction > rf.reduction,
        "buggy imbalance {} !> fixed imbalance {}",
        rb.reduction,
        rf.reduction
    );
}

#[test]
fn outlier_analysis_locates_injected_victims() {
    let bug = SyncBugConfig {
        probability: 1.0,
        extra_min: 2.0,
        extra_max: 2.5,
    };
    let mut cfg = small_config(Some(bug));
    cfg.jitter_sigma = 0.05; // keep organic noise far below the injections
    let run = run_workload(&WorkloadSpec {
        dataset: Dataset::Social {
            vertices: 3000,
            seed: 11,
        },
        algorithm: Algorithm::Cdlp { iterations: 6 },
        engine: EngineKind::PowerGraph(cfg),
    });
    let p = gas_phases(&run);
    let groups = imbalance_groups(&run.model, &run.trace, p.gather_thread);
    for bug in &run.injected_bugs {
        let group = groups
            .iter()
            .find(|g| run.trace.instance(g.scope).key == bug.iteration as u32)
            .expect("group for iteration");
        let rep = group.outliers(2.0);
        assert!(
            rep.outliers
                .iter()
                .any(|&(_, m, _)| m == Some(bug.machine as u16)),
            "iteration {}: injected victim on machine {} not found in {:?}",
            bug.iteration,
            bug.machine,
            rep.outliers
        );
    }
}

#[test]
fn work_profile_drives_phase_durations() {
    // Iterations with more label churn (early CDLP) must produce longer
    // apply phases than converged iterations (late).
    let run = run(None);
    let p = gas_phases(&run);
    let early_sync = run.work.iterations.first().unwrap().total().sync_messages;
    let late_sync = run.work.iterations.last().unwrap().total().sync_messages;
    assert!(early_sync > late_sync, "CDLP must converge");
    let gather_total_per_iter: Vec<u64> = {
        let groups = imbalance_groups(&run.model, &run.trace, p.gather_thread);
        groups
            .iter()
            .map(|g| g.members.iter().map(|&(_, _, d)| d).sum())
            .collect()
    };
    // Gather work is edge-proportional for CDLP: roughly constant.
    let first = gather_total_per_iter.first().copied().unwrap() as f64;
    let last = gather_total_per_iter.last().copied().unwrap() as f64;
    assert!(
        (first / last) < 2.0 && (last / first) < 2.0,
        "CDLP gather work should be stable: {gather_total_per_iter:?}"
    );
}
