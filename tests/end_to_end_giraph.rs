//! End-to-end integration: graph → algorithm → Giraph-like engine → logs →
//! Grade10 pipeline, asserting cross-crate invariants on real (simulated)
//! executions.

use grade10::cluster::GcConfig;
use grade10::core::attribution::UpsampleMode;
use grade10::core::bottleneck::{BottleneckConfig, BottleneckReport};
use grade10::core::pipeline::{characterize, CharacterizationConfig};
use grade10::core::replay::{replay_original, ReplayConfig};
use grade10::core::IssueKind;
use grade10::engines::pregel::PregelConfig;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadRun, WorkloadSpec};

const SLICE: u64 = 10_000_000;

fn small_config() -> PregelConfig {
    PregelConfig {
        machines: 2,
        threads: 2,
        cores: 2.0,
        net_bps: 2.0e6,
        queue_bytes: 2.0e5,
        gc: Some(GcConfig {
            heap_bytes: 1.2e8,
            trigger_fraction: 0.8,
            pause_per_byte: 0.3 / 1e9,
            min_pause_secs: 0.045,
            live_fraction: 0.25,
        }),
        ..Default::default()
    }
}

fn run() -> WorkloadRun {
    run_workload(&WorkloadSpec {
        dataset: Dataset::Rmat { scale: 10, seed: 7 },
        algorithm: Algorithm::PageRank { iterations: 4 },
        engine: EngineKind::Giraph(small_config()),
    })
}

#[test]
fn trace_structure_matches_engine() {
    let run = run();
    // One root, one execute, per-machine load/output, per-superstep
    // containers.
    let root_ty = run.model.root();
    assert_eq!(run.trace.instances_of_type(root_ty).count(), 1);
    let superstep = run.model.find_by_name("superstep").unwrap();
    assert_eq!(run.trace.instances_of_type(superstep).count(), 4);
    let thread = run.model.find_by_name("thread").unwrap();
    assert_eq!(run.trace.instances_of_type(thread).count(), 4 * 4);
    // Supersteps are disjoint in time and ordered by key.
    let mut steps: Vec<_> = run.trace.instances_of_type(superstep).collect();
    steps.sort_by_key(|s| s.key);
    for w in steps.windows(2) {
        assert!(w[0].end <= w[1].start, "supersteps overlap");
    }
}

#[test]
fn profile_conserves_consumption() {
    let run = run();
    for downsample in [2usize, 8] {
        let profile = run.build_profile(
            &run.rules_tuned,
            downsample,
            SLICE,
            UpsampleMode::DemandGuided,
        );
        let rt = run.resource_trace(downsample);
        for r in 0..profile.resources.len() {
            let ridx = grade10::core::trace::ResourceIdx(r as u32);
            let measured = rt.total_consumption(ridx);
            let upsampled: f64 =
                profile.consumption[r].iter().sum::<f64>() * profile.grid.slice_secs();
            assert!(
                (measured - upsampled - profile.overflow[r]).abs() < 1e-6 + measured * 1e-9,
                "resource {} not conserved: measured {measured}, upsampled {upsampled}",
                profile.resources[r].label()
            );
            // Attribution + unattributed == consumption, per slice.
            for s in 0..profile.grid.num_slices() {
                let attributed: f64 = profile
                    .usages
                    .iter()
                    .filter(|u| u.resource == ridx)
                    .map(|u| u.usage_at(s))
                    .sum();
                let total = attributed + profile.unattributed[r][s];
                assert!(
                    (total - profile.consumption[r][s]).abs() < 1e-6,
                    "slice {s} of {} not conserved",
                    profile.resources[r].label()
                );
            }
        }
    }
}

#[test]
fn consumption_never_exceeds_capacity() {
    let run = run();
    let profile = run.build_profile(&run.rules_tuned, 8, SLICE, UpsampleMode::DemandGuided);
    for (r, res) in profile.resources.iter().enumerate() {
        for (s, &c) in profile.consumption[r].iter().enumerate() {
            assert!(
                c <= res.capacity * (1.0 + 1e-9),
                "{} exceeds capacity at slice {s}: {c} > {}",
                res.label(),
                res.capacity
            );
        }
    }
}

#[test]
fn gc_and_queue_blocking_reach_the_report() {
    let run = run();
    assert!(!run.sim.stats.gc_pauses.is_empty(), "engine must GC");
    let profile = run.build_profile(&run.rules_tuned, 8, SLICE, UpsampleMode::DemandGuided);
    let report = BottleneckReport::build(&run.trace, &profile, &BottleneckConfig::default());
    let kinds: std::collections::BTreeSet<&str> = report
        .blocking
        .iter()
        .map(|b| b.resource.as_str())
        .collect();
    assert!(kinds.contains("gc"), "gc blocking missing: {kinds:?}");
    assert!(kinds.contains("msgq"), "msgq blocking missing: {kinds:?}");
    // Blocking attaches to compute threads (the phases the resources halt).
    let thread_ty = run.model.find_by_name("thread").unwrap();
    assert!(report
        .blocking
        .iter()
        .filter(|b| b.resource == "gc")
        .all(|b| run.trace.instance(b.instance).type_id == thread_ty));
}

#[test]
fn replay_baseline_close_to_observed_makespan() {
    let run = run();
    let base = replay_original(&run.model, &run.trace, &ReplayConfig::default());
    let observed = run.trace.makespan_end() - run.trace.origin();
    // Replay removes scheduling gaps, so it can only be faster — but on a
    // barrier-synchronized BSP trace it should be close.
    assert!(base.makespan <= observed);
    assert!(
        base.makespan as f64 >= 0.80 * observed as f64,
        "replay {} too far below observed {}",
        base.makespan,
        observed
    );
}

#[test]
fn full_characterization_finds_cpu_gc_and_queue_issues() {
    let run = run();
    let resources = run.resource_trace(8);
    let result = characterize(
        &run.model,
        &run.rules_tuned,
        &run.trace,
        &resources,
        &CharacterizationConfig::default(),
    );
    let has = |pred: &dyn Fn(&IssueKind) -> bool| result.issues.iter().any(|i| pred(&i.kind));
    assert!(
        has(&|k| matches!(k, IssueKind::ConsumableBottleneck { resource_kind } if resource_kind == "cpu")),
        "cpu issue missing"
    );
    assert!(
        has(&|k| matches!(k, IssueKind::BlockingBottleneck { resource_kind } if resource_kind == "gc")),
        "gc issue missing"
    );
    assert!(
        has(&|k| matches!(k, IssueKind::BlockingBottleneck { resource_kind } if resource_kind == "msgq")),
        "msgq issue missing"
    );
    for i in &result.issues {
        assert!(i.reduction > 0.0 && i.reduction < 1.0);
        assert!(i.optimistic_makespan <= i.base_makespan);
    }
}

#[test]
fn pipeline_is_deterministic() {
    let (a, b) = (run(), run());
    assert_eq!(a.sim.end_time, b.sim.end_time);
    assert_eq!(a.trace.instances().len(), b.trace.instances().len());
    let pa = a.build_profile(&a.rules_tuned, 8, SLICE, UpsampleMode::DemandGuided);
    let pb = b.build_profile(&b.rules_tuned, 8, SLICE, UpsampleMode::DemandGuided);
    assert_eq!(pa.consumption, pb.consumption);
}
