//! Backwards compatibility of the campaign journal: version-2 readers
//! over version-1 files.
//!
//! The committed fixture `tests/fixtures/journal_v1.jsonl` is a real
//! format-version-1 journal as the pre-lease scheduler would have left it
//! after dying mid-campaign: two mixes finished, one permanently failed,
//! one in flight, two never started. A v2 build must (a) replay it to
//! exactly that state, (b) `--resume` over it unchanged — store-authority
//! semantics included — and (c) refuse journals from *future* format
//! versions with a clear, non-recoverable error instead of misreading
//! them.
//!
//! The fixture's hashes are `MixSpec::content_hash` over the same 6-mix
//! spec `tests/campaign.rs` uses (`code_version: "t1"`). If the content
//! hash recipe ever changes intentionally, regenerate the fixture:
//! replay `spec()` below through a v1-era build (or recompute the FNV-1a
//! content strings `v=t1;alg=..;ds=rmat:6;eng=giraph;m=..;seed=46;
//! fault=none` and the per-line checksums) — the hash-stability assertion
//! here will point at the drift first.

use std::path::{Path, PathBuf};
use std::time::Duration;

use grade10::core::campaign::{
    run_campaign, CampaignOptions, CampaignSpec, Journal, MixAttempt, MixOutcome, MixSpec,
};
use grade10::core::error::Grade10Error;
use grade10::core::hash::fnv1a;

/// The same 6-mix matrix as `tests/campaign.rs`: 3 algorithms × 2
/// machine counts, pinned `code_version` so content hashes are stable.
fn spec() -> CampaignSpec {
    CampaignSpec {
        name: "chaos".into(),
        code_version: "t1".into(),
        algorithms: vec!["pr".into(), "bfs".into(), "wcc".into()],
        datasets: vec!["rmat:6".into()],
        engines: vec!["giraph".into()],
        machines: vec![2, 4],
        seeds: vec![46],
        faults: vec!["none".into()],
    }
}

fn opts(name: &str) -> CampaignOptions {
    let dir = std::env::temp_dir().join(format!("g10-v1compat-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut o = CampaignOptions::new(dir);
    o.retry.base = Duration::ZERO;
    o
}

fn fake_runner(mix: &MixSpec, _a: MixAttempt) -> Result<MixOutcome, Grade10Error> {
    Ok(MixOutcome {
        mix: mix.clone(),
        hash: 0,
        makespan_ns: 500_000_000 * u64::from(mix.machines) + mix.algorithm.len() as u64,
        classes: vec![format!("bottleneck:{}", mix.algorithm)],
        incidents: 0,
        degraded: false,
        attempts: 0,
        mode: String::new(),
    })
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/journal_v1.jsonl")
}

fn install_fixture(dir: &Path) -> PathBuf {
    std::fs::create_dir_all(dir).unwrap();
    let dst = dir.join("journal.jsonl");
    std::fs::copy(fixture_path(), &dst).expect("copy committed v1 fixture");
    dst
}

fn hash_of(mixes: &[MixSpec], alg: &str, machines: u32) -> u64 {
    mixes
        .iter()
        .find(|m| m.algorithm == alg && m.machines == machines)
        .unwrap()
        .content_hash("t1")
}

/// The fixture replays to exactly the state the v1 writer recorded:
/// finished, failed (with the kind defaulted for v1's kindless records),
/// and in-flight sets — nothing quarantined, nothing misread.
#[test]
fn v1_fixture_replays_with_the_v2_reader() {
    let o = opts("replay");
    let path = install_fixture(&o.dir);
    let mixes = spec().expand();

    // Hash-stability tripwire: the fixture was generated from these exact
    // content strings. If this fails, the hash recipe drifted — fix that
    // (or regenerate the fixture if the drift is intentional).
    assert_eq!(
        hash_of(&mixes, "pr", 2),
        fnv1a(b"v=t1;alg=pr;ds=rmat:6;eng=giraph;m=2;seed=46;fault=none"),
        "content-hash recipe drifted from the committed fixture"
    );

    let (_journal, replay) = Journal::open_join(&path).expect("v1 journal opens under v2");
    assert_eq!(replay.quarantined, 0, "every v1 record parses cleanly");
    assert_eq!(replay.finished.len(), 2);
    assert!(replay.finished.contains(&hash_of(&mixes, "pr", 2)));
    assert!(replay.finished.contains(&hash_of(&mixes, "pr", 4)));
    let failed = replay
        .failed
        .get(&hash_of(&mixes, "bfs", 2))
        .expect("v1 failed record replayed");
    assert_eq!(failed.error, "telemetry always rotten");
    assert_eq!(failed.attempts, 3);
    assert_eq!(
        failed.kind, "error",
        "v1 failed records carry no kind; replay defaults it"
    );
    assert!(
        replay.interrupted().contains(&hash_of(&mixes, "bfs", 4)),
        "the in-flight mix is visible as interrupted"
    );
    assert!(replay.claims.is_empty(), "v1 journals predate leases");
    let _ = std::fs::remove_dir_all(&o.dir);
}

/// `--resume` over a v1 journal behaves exactly as it always did: the
/// store is the outcome authority, so with the store populated every mix
/// is served from cache, and with it empty everything (the v1-failed mix
/// included) re-runs. Either way the ranked report is byte-identical to
/// an uninterrupted v2 run.
#[test]
fn resume_on_a_v1_journal_works_unchanged() {
    // Ground truth + a fully populated store from an uninterrupted run.
    let mut o = opts("resume");
    let reference = run_campaign(&spec(), &o, fake_runner).expect("reference run");
    assert!(reference.is_clean());

    // Empty store: v1 finished markers alone don't resurrect outcomes —
    // store authority, same as v1.
    let mut empty = opts("resume-empty");
    install_fixture(&empty.dir);
    empty.resume = true;
    let rerun = run_campaign(&spec(), &empty, fake_runner).expect("resume over v1, empty store");
    assert_eq!(rerun.executed, 6, "no artifacts → everything re-runs");
    assert_eq!(rerun.cached, 0);
    assert_eq!(rerun.report_text, reference.report_text);
    assert_eq!(rerun.report_json, reference.report_json);

    // Populated store: swap the v2 journal for the v1 fixture and resume
    // in place — every outcome is served from the store, nothing re-runs.
    std::fs::remove_file(o.dir.join("journal.jsonl")).unwrap();
    install_fixture(&o.dir);
    o.resume = true;
    let resumed = run_campaign(&spec(), &o, |_mix, _a| {
        panic!("resume over a v1 journal with a full store must not recompute")
    })
    .expect("resume over v1, populated store");
    assert_eq!(resumed.cached, 6);
    assert_eq!(resumed.executed, 0);
    assert_eq!(resumed.report_text, reference.report_text);
    assert_eq!(resumed.report_json, reference.report_json);

    let _ = std::fs::remove_dir_all(&o.dir);
    let _ = std::fs::remove_dir_all(&empty.dir);
}

/// A journal written by a *newer* build is refused outright with a
/// dedicated, non-recoverable error naming both versions — not replayed
/// on a best-effort basis.
#[test]
fn future_version_journals_are_refused_with_a_clear_error() {
    let o = opts("future");
    std::fs::create_dir_all(&o.dir).unwrap();
    // Craft a checksum-valid header claiming format version 3; the crc
    // scheme (trailing FNV-1a of the compact-JSON payload) is part of the
    // format and stable across versions.
    let payload = r#"{"record":"header","version":3,"campaign":"chaos"}"#;
    let line = format!(
        "{},\"crc\":{}}}\n",
        &payload[..payload.len() - 1],
        fnv1a(payload.as_bytes())
    );
    let path = o.dir.join("journal.jsonl");
    std::fs::write(&path, line).unwrap();

    let err = Journal::open_join(&path).expect_err("v3 journal must be refused");
    match &err {
        Grade10Error::UnsupportedVersion(detail) => {
            assert!(
                detail.contains("format version 3"),
                "error names the journal's version: {detail}"
            );
            assert!(
                detail.contains('2'),
                "error names what this build reads: {detail}"
            );
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    assert!(!err.is_recoverable(), "wrong-version journals are not retryable");

    let mut ro = opts("future-resume");
    std::fs::create_dir_all(&ro.dir).unwrap();
    std::fs::copy(&path, ro.dir.join("journal.jsonl")).unwrap();
    ro.resume = true;
    let run_err = run_campaign(&spec(), &ro, fake_runner)
        .expect_err("--resume over a future-version journal must refuse, not rerun");
    assert!(matches!(run_err, Grade10Error::UnsupportedVersion(_)));

    let _ = std::fs::remove_dir_all(&o.dir);
    let _ = std::fs::remove_dir_all(&ro.dir);
}
