//! Determinism of *supervised* execution across worker-pool widths.
//!
//! The supervision layer fans per-machine ingest and attribution units out
//! over a bounded worker pool, but merges everything order-sensitive —
//! incidents, coverage, repaired events, profile rows — in stable unit-key
//! order. This test drives the full 13-combination fault matrix through
//! the supervised pipeline under `GRADE10_THREADS` ∈ {1, 2, 8} and asserts
//! the `PartialCharacterization` is identical byte for byte: same
//! incidents, same coverage, same profile floats (Debug formatting
//! round-trips f64 exactly). Lives in its own integration-test binary
//! because the env var is process-global.

use std::fmt::Write as _;
use std::sync::OnceLock;

use grade10::cluster::{FaultClass, FaultPlan};
use grade10::core::config::Parallelism;
use grade10::core::pipeline::CharacterizationConfig;
use grade10::core::supervise::{characterize_events_supervised, PartialCharacterization};
use grade10::core::trace::{IngestConfig, MILLIS};
use grade10::engines::bridge::{to_raw_events, to_raw_series};
use grade10::engines::pregel::PregelConfig;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadRun, WorkloadSpec};

fn tiny_run() -> &'static WorkloadRun {
    static RUN: OnceLock<WorkloadRun> = OnceLock::new();
    RUN.get_or_init(|| {
        run_workload(&WorkloadSpec {
            dataset: Dataset::Rmat { scale: 8, seed: 3 },
            algorithm: Algorithm::PageRank { iterations: 2 },
            engine: EngineKind::Giraph(PregelConfig {
                machines: 2,
                threads: 2,
                cores: 2.0,
                ..Default::default()
            }),
        })
    })
}

fn supervised_config() -> CharacterizationConfig {
    let mut cfg = CharacterizationConfig::default();
    cfg.profile.slice = 10 * MILLIS;
    cfg.profile.estimate_missing = true;
    cfg.ingest = IngestConfig::lenient();
    // Force the pool on even for this 3-unit workload, so the matrix
    // genuinely exercises concurrent units at every width.
    cfg.supervise.parallelism = Parallelism::Always;
    cfg
}

/// The same 13 fault combinations the supervision matrix uses: every
/// single class, then five multi-class mixtures up to all-eight.
fn fault_masks() -> Vec<u8> {
    (0..8)
        .map(|b| 1u8 << b)
        .chain([0b0011_1111, 0b1100_0000, 0b1010_1010, 0b0101_0101, 0xFF])
        .collect()
}

fn plan_for(mask: u8, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::clean(seed);
    for (bit, &class) in FaultClass::ALL.iter().enumerate() {
        if mask & (1 << bit) != 0 {
            plan.enable(class);
        }
    }
    plan
}

/// Exhaustive textual dump of a partial characterization: every incident,
/// the coverage ledgers, and every float the profile holds.
fn dump(p: &PartialCharacterization) -> String {
    let mut s = String::new();
    for i in &p.incidents {
        writeln!(s, "incident={i:?}").unwrap();
    }
    writeln!(s, "coverage={:?}", p.coverage).unwrap();
    let profile = &p.characterization.profile;
    writeln!(
        s,
        "slices={} resources={:?}",
        profile.grid.num_slices(),
        profile.resources
    )
    .unwrap();
    writeln!(s, "consumption={:?}", profile.consumption).unwrap();
    writeln!(s, "unattributed={:?}", profile.unattributed).unwrap();
    writeln!(s, "overflow={:?}", profile.overflow).unwrap();
    writeln!(s, "estimated={:?}", profile.estimated).unwrap();
    for u in &profile.usages {
        writeln!(s, "usage={u:?}").unwrap();
    }
    writeln!(s, "makespan={}", p.characterization.base_makespan).unwrap();
    writeln!(s, "ingest={:?}", p.characterization.ingest).unwrap();
    s
}

/// Runs the whole fault matrix at one pool width and returns one dump per
/// mask. The env var pins the width; the config's `threads: None` defers
/// to it.
fn matrix_at(threads: &str) -> Vec<String> {
    std::env::set_var("GRADE10_THREADS", threads);
    let run = tiny_run();
    let cfg = supervised_config();
    let out = fault_masks()
        .into_iter()
        .map(|mask| {
            let plan = plan_for(mask, 0x5D_0000 + mask as u64);
            let events = to_raw_events(&plan.inject_logs(&run.sim.logs));
            let monitoring = to_raw_series(&plan.inject_series(&run.sim.series), 8);
            let p = characterize_events_supervised(
                &run.model,
                &run.rules_tuned,
                &events,
                &monitoring,
                &cfg,
            )
            .unwrap_or_else(|e| panic!("mask {mask:#010b} failed: {e}"));
            dump(&p)
        })
        .collect();
    std::env::remove_var("GRADE10_THREADS");
    out
}

#[test]
fn supervised_matrix_is_identical_across_pool_widths() {
    let one = matrix_at("1");
    let two = matrix_at("2");
    let eight = matrix_at("8");
    assert!(
        one.iter().any(|d| d.contains("incident=")),
        "matrix produced no incidents; the fixture is too tame to prove anything"
    );
    for ((mask, a), (b, c)) in fault_masks().iter().zip(&one).zip(two.iter().zip(&eight)) {
        assert_eq!(a, b, "mask {mask:#010b}: width 1 vs 2 diverged");
        assert_eq!(b, c, "mask {mask:#010b}: width 2 vs 8 diverged");
    }
}
