//! End-to-end fault tolerance: every *stream-damage* fault class must be
//! rejected by strict ingestion with a classified, recoverable error — and
//! repaired by lenient ingestion into a complete characterization whose
//! report accounts for the damage. No panics, ever.
//!
//! The hostile classes (`machine-missing`, `timestamp-bomb`) are out of
//! scope here: they need the supervision layer (coverage accounting, grid
//! budget guard, monitoring quarantine) and are exercised end to end in
//! `tests/supervision.rs`.

use grade10::cluster::{FaultClass, FaultPlan};
use grade10::core::pipeline::{characterize_events, CharacterizationConfig};
use grade10::core::trace::{repair_events, IngestConfig, IngestReport, MILLIS};
use grade10::engines::bridge::{to_raw_events, to_raw_series};
use grade10::engines::pregel::PregelConfig;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadRun, WorkloadSpec};

fn tiny_run() -> WorkloadRun {
    run_workload(&WorkloadSpec {
        dataset: Dataset::Rmat { scale: 8, seed: 3 },
        algorithm: Algorithm::PageRank { iterations: 2 },
        engine: EngineKind::Giraph(PregelConfig {
            machines: 2,
            threads: 2,
            cores: 2.0,
            ..Default::default()
        }),
    })
}

fn config(lenient: bool) -> CharacterizationConfig {
    let mut cfg = CharacterizationConfig::default();
    cfg.profile.slice = 10 * MILLIS;
    cfg.profile.estimate_missing = lenient;
    if lenient {
        cfg.ingest = IngestConfig::lenient();
    }
    cfg
}

/// The acceptance criterion of the fault harness, class by class: strict
/// mode rejects the corrupted stream with a recoverable error, lenient mode
/// completes and counts the corruption in its report.
#[test]
fn every_fault_class_strict_rejects_and_lenient_repairs() {
    let run = tiny_run();
    for class in FaultClass::STREAM_DAMAGE {
        let plan = FaultPlan::single(class, 7);
        let events = to_raw_events(&plan.inject_logs(&run.sim.logs));
        let monitoring = to_raw_series(&plan.inject_series(&run.sim.series), 8);

        match characterize_events(
            &run.model,
            &run.rules_tuned,
            &events,
            &monitoring,
            &config(false),
        ) {
            Ok(_) => panic!("strict mode accepted a stream corrupted by {}", class.name()),
            Err(err) => assert!(
                err.is_recoverable(),
                "{} should be classified as damage, got: {err}",
                class.name()
            ),
        }

        let result = characterize_events(
            &run.model,
            &run.rules_tuned,
            &events,
            &monitoring,
            &config(true),
        )
        .unwrap_or_else(|e| panic!("lenient mode failed on {}: {e}", class.name()));
        assert!(
            !result.ingest.is_clean(),
            "lenient report for {} recorded no repairs",
            class.name()
        );
        let quality = result.ingest.quality_score();
        assert!(
            (0.0..1.0).contains(&quality),
            "{}: quality score {quality} not in [0, 1)",
            class.name()
        );
    }
}

/// A clean stream must pass strict ingestion untouched, and lenient mode
/// must agree that nothing needed repair.
#[test]
fn clean_stream_is_clean_in_both_modes() {
    let run = tiny_run();
    let events = to_raw_events(&run.sim.logs);
    let monitoring = to_raw_series(&run.sim.series, 8);

    let strict = characterize_events(
        &run.model,
        &run.rules_tuned,
        &events,
        &monitoring,
        &config(false),
    )
    .expect("strict mode must accept the simulator's own output");
    assert!(strict.ingest.is_clean());

    let lenient = characterize_events(
        &run.model,
        &run.rules_tuned,
        &events,
        &monitoring,
        &config(true),
    )
    .expect("lenient mode must accept a clean stream");
    assert!(lenient.ingest.is_clean());
    assert_eq!(lenient.ingest.quality_score(), 1.0);
}

/// Seeded sweep with every fault enabled at once: lenient characterization
/// must complete for each seed — the whole point of the harness is that no
/// combination of injected damage panics the pipeline.
#[test]
fn all_faults_at_once_never_panic_lenient() {
    let run = tiny_run();
    for seed in 1..=5u64 {
        let plan = FaultPlan::all(seed);
        let events = to_raw_events(&plan.inject_logs(&run.sim.logs));
        let monitoring = to_raw_series(&plan.inject_series(&run.sim.series), 8);
        let result = characterize_events(
            &run.model,
            &run.rules_tuned,
            &events,
            &monitoring,
            &config(true),
        )
        .unwrap_or_else(|e| panic!("seed {seed}: lenient characterization failed: {e}"));
        assert!(
            !result.ingest.is_clean(),
            "seed {seed}: every fault enabled but the report is clean"
        );
        assert!(result.ingest.quality_score() < 1.0, "seed {seed}");
    }
}

/// Identical plans over identical inputs must yield identical reports —
/// fault injection and repair are both deterministic.
#[test]
fn injection_and_repair_are_deterministic() {
    let run = tiny_run();
    let reports: Vec<String> = (0..2)
        .map(|_| {
            let plan = FaultPlan::all(42);
            let events = to_raw_events(&plan.inject_logs(&run.sim.logs));
            let monitoring = to_raw_series(&plan.inject_series(&run.sim.series), 8);
            let result = characterize_events(
                &run.model,
                &run.rules_tuned,
                &events,
                &monitoring,
                &config(true),
            )
            .expect("lenient characterization");
            // The repair counters alone would pass even if the *repaired
            // stream* varied, so fold in everything downstream of arrival
            // order: the replayed makespan, the issue list, and the profile
            // mass per resource.
            let consumption: Vec<f64> = result
                .profile
                .consumption
                .rows()
                .map(|row| row.iter().sum())
                .collect();
            format!(
                "{:?} makespan={} issues={:?} consumption={consumption:?}",
                result.ingest,
                result.base_makespan,
                result.summary(&run.model),
            )
        })
        .collect();
    assert_eq!(reports[0], reports[1]);
}

/// Regression: repairing the same damaged stream twice must emit the
/// *identical* event sequence — not just identical repair counters. Repair
/// groups records in hash maps, and sibling phases released by one barrier
/// share a timestamp, so without a deterministic sort the tie-break between
/// them followed hash-iteration order and arrival order drifted from run to
/// run (visible as jitter in the blocked-time table under `--inject drop`).
#[test]
fn repair_emits_a_deterministic_stream() {
    let run = tiny_run();
    for class in [FaultClass::Drop, FaultClass::Truncate, FaultClass::Reorder] {
        let mut plan = FaultPlan::clean(5);
        plan.enable(class);
        let events = to_raw_events(&plan.inject_logs(&run.sim.logs));
        let repaired: Vec<_> = (0..2)
            .map(|_| {
                let mut report = IngestReport::default();
                repair_events(&events, &mut report)
            })
            .collect();
        assert_eq!(
            repaired[0], repaired[1],
            "repair of a {class:?}-damaged stream must be order-deterministic"
        );
    }
}
