//! Determinism regression: the characterization must be byte-identical
//! regardless of how many threads the upsampling stage fans out over.
//!
//! `build_profile` writes each resource row from exactly one worker, so the
//! parallel and sequential paths perform the identical float operations in
//! the identical order per row. `GRADE10_THREADS` pins the fan-out width;
//! this test forces 1 and 4 and diffs an exhaustive dump of everything the
//! pipeline produced. Lives in its own integration-test binary because the
//! env var is process-global.

use std::fmt::Write as _;

use grade10::core::attribution::Parallelism;
use grade10::core::model::{AttributionRule, ExecutionModelBuilder, Repeat, RuleSet};
use grade10::core::pipeline::{characterize, Characterization, CharacterizationConfig};
use grade10::core::trace::{ExecutionTrace, ResourceInstance, ResourceTrace, TraceBuilder, MILLIS};
use grade10::core::ExecutionModel;

/// A BSP workload over 4 machines × 2 resource kinds = 8 resource rows, so
/// a 4-thread fan-out genuinely splits the work.
fn scenario() -> (ExecutionModel, RuleSet, ExecutionTrace, ResourceTrace) {
    let machines = 4usize;
    let threads = 4usize;
    let steps = 6usize;
    let mut b = ExecutionModelBuilder::new("job");
    let root = b.root();
    let step = b.child(root, "step", Repeat::Sequential);
    let task = b.child(step, "task", Repeat::Parallel);
    let model = b.build();
    let rules = RuleSet::new()
        .rule(task, "cpu", AttributionRule::Variable(1.0))
        .rule(task, "net", AttributionRule::Exact(0.25));

    let mut tb = TraceBuilder::new(&model);
    let step_ms = 50u64;
    let total = steps as u64 * step_ms;
    tb.add_phase(&[("job", 0)], 0, total * MILLIS, None, None).unwrap();
    for s in 0..steps {
        let t0 = s as u64 * step_ms;
        tb.add_phase(
            &[("job", 0), ("step", s as u32)],
            t0 * MILLIS,
            (t0 + step_ms) * MILLIS,
            None,
            None,
        )
        .unwrap();
        for t in 0..machines * threads {
            let d = step_ms - (t as u64 * 7 + s as u64 * 3) % 23;
            tb.add_phase(
                &[("job", 0), ("step", s as u32), ("task", t as u32)],
                t0 * MILLIS,
                (t0 + d) * MILLIS,
                Some((t / threads) as u16),
                Some((t % threads) as u16),
            )
            .unwrap();
        }
    }
    let trace = tb.build().unwrap();

    let mut rt = ResourceTrace::new();
    for m in 0..machines {
        for (kind, cap) in [("cpu", 4.0f64), ("net", 1.0)] {
            let idx = rt.add_resource(ResourceInstance {
                kind: kind.into(),
                machine: Some(m as u16),
                capacity: cap,
            });
            let samples: Vec<f64> = (0..total / 25)
                .map(|i| cap * 0.2 + (((i + m as u64) % 5) as f64) * cap * 0.15)
                .collect();
            rt.add_series(idx, 0, 25 * MILLIS, &samples);
        }
    }
    (model, rules, trace, rt)
}

/// Exhaustive textual dump of a characterization: every float the pipeline
/// produced, via Debug formatting (which round-trips f64 exactly), plus the
/// derived bottleneck/issue summary.
fn dump(c: &Characterization, model: &ExecutionModel) -> String {
    let p = &c.profile;
    let mut s = String::new();
    writeln!(s, "slices={} resources={:?}", p.grid.num_slices(), p.resources).unwrap();
    writeln!(s, "consumption={:?}", p.consumption).unwrap();
    writeln!(s, "demand_exact={:?}", p.demand_exact).unwrap();
    writeln!(s, "demand_variable={:?}", p.demand_variable).unwrap();
    writeln!(s, "unattributed={:?}", p.unattributed).unwrap();
    writeln!(s, "overflow={:?}", p.overflow).unwrap();
    writeln!(s, "estimated={:?}", p.estimated).unwrap();
    for u in &p.usages {
        writeln!(s, "usage={u:?}").unwrap();
    }
    writeln!(s, "makespan={}", c.base_makespan).unwrap();
    for line in c.summary(model) {
        writeln!(s, "issue={line}").unwrap();
    }
    s
}

#[test]
fn characterization_is_identical_across_thread_counts() {
    let (model, rules, trace, rt) = scenario();
    let mut cfg = CharacterizationConfig::default();
    cfg.profile.parallelism = Parallelism::Always;

    let run_with = |threads: Option<&str>| {
        match threads {
            Some(n) => std::env::set_var("GRADE10_THREADS", n),
            None => std::env::remove_var("GRADE10_THREADS"),
        }
        let out = dump(&characterize(&model, &rules, &trace, &rt, &cfg), &model);
        std::env::remove_var("GRADE10_THREADS");
        out
    };

    let one = run_with(Some("1"));
    let four = run_with(Some("4"));
    assert!(one.contains("usage="), "dump looks empty:\n{one}");
    assert_eq!(one, four, "1-thread and 4-thread runs diverged");

    // The sequential path must agree bit-for-bit too.
    let mut seq_cfg = cfg.clone();
    seq_cfg.profile.parallelism = Parallelism::Never;
    let seq = dump(&characterize(&model, &rules, &trace, &rt, &seq_cfg), &model);
    assert_eq!(one, seq, "parallel and sequential runs diverged");

    // And the whole thing is reproducible run to run.
    let again = run_with(Some("4"));
    assert_eq!(four, again, "same-config runs diverged");
}
