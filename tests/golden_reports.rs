//! Golden-snapshot tests of the text reports: the rendered tables for
//! deterministic demo scenarios are diffed byte-for-byte against
//! checked-in goldens under `tests/goldens/`.
//!
//! Re-bless after an intentional report change with:
//!
//! ```sh
//! UPDATE_GOLDENS=1 cargo test --test golden_reports
//! ```
//!
//! Simulated workloads are deterministic (seeded simulation time, not wall
//! time), so most goldens compare exactly. The live self-profile table is
//! the exception — its numbers are wall-clock measurements of this very
//! test run — so volatile fields (anything numeric, and the width-dependent
//! separator rules) are normalized away and only the structure is pinned.

use std::fs;
use std::path::PathBuf;

use grade10::cluster::{FaultClass, FaultPlan};
use grade10::core::attribution::Parallelism;
use grade10::core::obs::{MetaTrace, SpanRecord, Stage};
use grade10::core::pipeline::{
    characterize_events, characterize_meta, characterize_self, CharacterizationConfig,
};
use grade10::core::report::{
    blocked_time_table, coverage_table, incident_table, ingest_table, machine_table,
    self_profile_table, usage_table,
};
use grade10::core::supervise::characterize_events_supervised;
use grade10::core::trace::{ingest_monitoring, IngestConfig, IngestReport, MILLIS};
use grade10::engines::bridge::{to_raw_events, to_raw_series};
use grade10::engines::pregel::PregelConfig;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadRun, WorkloadSpec};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name)
}

/// Diffs `actual` against the checked-in golden, or re-blesses it when
/// `UPDATE_GOLDENS=1` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDENS").ok().as_deref() == Some("1") {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {name} ({e}); bless it with UPDATE_GOLDENS=1")
    });
    if expected != actual {
        // A labeled side-by-side beats assert_eq!'s escaped one-liner.
        panic!(
            "report drifted from golden {name}; re-bless with UPDATE_GOLDENS=1 \
             if intentional\n--- expected ---\n{expected}\n--- actual ---\n{actual}"
        );
    }
}

/// Strips everything volatile from a rendered table: numeric tokens become
/// `#` (wall-clock cells change every run, and with them the unit suffix
/// and column widths), separator rules collapse to one dash, space runs to
/// one space. What survives is the structure: headers, row labels, row
/// count, column count.
fn normalize_volatile(rendered: &str) -> String {
    let mut out = String::new();
    for line in rendered.lines() {
        let tokens: Vec<String> = line
            .split_whitespace()
            .map(|tok| {
                if tok.chars().any(|c| c.is_ascii_digit()) {
                    "#".to_string()
                } else if tok.chars().all(|c| c == '-') {
                    "-".to_string()
                } else {
                    tok.to_string()
                }
            })
            .collect();
        out.push_str(&tokens.join(" "));
        out.push('\n');
    }
    out
}

/// The demo scenario every golden derives from: a deterministic simulated
/// PageRank run on a Giraph-like engine.
fn demo_run() -> WorkloadRun {
    run_workload(&WorkloadSpec {
        dataset: Dataset::Rmat { scale: 8, seed: 3 },
        algorithm: Algorithm::PageRank { iterations: 2 },
        engine: EngineKind::Giraph(PregelConfig {
            machines: 2,
            threads: 2,
            cores: 2.0,
            ..Default::default()
        }),
    })
}

fn demo_config(lenient: bool) -> CharacterizationConfig {
    let mut cfg = CharacterizationConfig::default();
    cfg.profile.slice = 10 * MILLIS;
    cfg.profile.estimate_missing = lenient;
    if lenient {
        cfg.ingest = IngestConfig::lenient();
    }
    cfg
}

/// Summary tables of the clean demo run: per-type usage, per-resource
/// utilization, blocked time, and the issue summary. All derived from
/// simulated time — byte-stable across runs and machines.
#[test]
fn golden_summary_report() {
    let run = demo_run();
    let events = to_raw_events(&run.sim.logs);
    let monitoring = to_raw_series(&run.sim.series, 8);
    let result = characterize_events(
        &run.model,
        &run.rules_tuned,
        &events,
        &monitoring,
        &demo_config(false),
    )
    .expect("clean demo stream");

    let mut out = String::new();
    out.push_str("== attributed usage by phase type ==\n");
    out.push_str(&usage_table(&result.profile, &run.model, &run.trace).render());
    out.push_str("\n== resource utilization ==\n");
    out.push_str(&machine_table(&result.profile).render());
    out.push_str("\n== blocked time ==\n");
    out.push_str(&blocked_time_table(&run.trace).render());
    out.push_str("\n== issues ==\n");
    for line in result.summary(&run.model) {
        out.push_str(&line);
        out.push('\n');
    }
    check_golden("summary_pagerank_giraph.txt", &out);
}

/// The ingest damage table for the demo run corrupted by every fault class
/// at once. Injection and repair are seeded and deterministic, and the
/// table reads only integer repair counters, so this compares exactly.
#[test]
fn golden_ingest_damage_report() {
    let run = demo_run();
    let plan = FaultPlan::all(42);
    let events = to_raw_events(&plan.inject_logs(&run.sim.logs));
    let monitoring = to_raw_series(&plan.inject_series(&run.sim.series), 8);
    let result = characterize_events(
        &run.model,
        &run.rules_tuned,
        &events,
        &monitoring,
        &demo_config(true),
    )
    .expect("lenient mode repairs every fault class");
    assert!(!result.ingest.is_clean());

    let out = ingest_table(&result.ingest).render();
    check_golden("ingest_damage_all_faults.txt", &out);
}

/// The incidents and coverage tables for the demo run under the hostile
/// fault pair (machine-missing + timestamp-bomb) in supervised lenient
/// mode. Per-machine units run on the worker pool, but results merge in
/// stable unit-key order; injection is seeded and incident details carry
/// only deterministic counts — so this compares exactly at any width.
#[test]
fn golden_supervision_incident_report() {
    let run = demo_run();
    let mut plan = FaultPlan::clean(7);
    plan.enable(FaultClass::MachineMissing);
    plan.enable(FaultClass::TimestampBomb);
    let events = to_raw_events(&plan.inject_logs(&run.sim.logs));
    let monitoring = to_raw_series(&plan.inject_series(&run.sim.series), 8);
    let p = characterize_events_supervised(
        &run.model,
        &run.rules_tuned,
        &events,
        &monitoring,
        &demo_config(true),
    )
    .expect("supervised lenient mode absorbs the hostile faults");
    assert!(!p.is_complete());

    let mut out = String::new();
    out.push_str("== incidents ==\n");
    out.push_str(&incident_table(&p.incidents).render());
    out.push_str("\n== coverage ==\n");
    out.push_str(&coverage_table(&p.coverage).render());
    check_golden("supervision_machine_missing_timestamp_bomb.txt", &out);
}

/// The self-profile table over a hand-built meta-trace with fixed span
/// timings: pins the exact rendering — units, shares, totals — without any
/// wall-clock in the loop.
#[test]
fn golden_self_profile_fixed_trace() {
    let span = |stage, start: u64, end: u64| SpanRecord {
        stage,
        thread: 0,
        start,
        end,
        allocs: 0,
        alloc_bytes: 0,
    };
    let raw = MetaTrace {
        spans: vec![
            span(Stage::Ingest, 0, 400_000),
            span(Stage::Demand, 400_000, 1_000_000),
            span(Stage::Upsample, 1_000_000, 4_200_000),
            span(Stage::Attribute, 4_200_000, 5_000_000),
            span(Stage::Bottleneck, 5_000_000, 6_600_000),
            span(Stage::Report, 6_600_000, 7_000_000),
        ],
        end: 7_000_000,
    };
    let meta = characterize_meta(&raw).expect("meta characterization");
    check_golden("self_profile_fixed_trace.txt", &self_profile_table(&meta).render());
}

/// The binary-ingest damage table: one row per corruption class applied to
/// a deterministic binary trace, with the exact classified error message
/// the reader reports. Encoding is deterministic and the messages carry
/// only content-derived numbers (offsets, checksums of fixed bytes), so
/// this compares exactly — any drift in the damage taxonomy or its
/// wording shows up as a diff here.
#[test]
fn golden_binary_ingest_damage_table() {
    use grade10::core::hash::fnv1a;
    use grade10::core::trace::{decode_trace, encode_trace};

    let run = demo_run();
    let events = to_raw_events(&run.sim.logs);
    let bytes = encode_trace(&events, None);
    let section_count = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
    let payload_start = 24 + section_count * 32;

    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("empty file", Vec::new()),
        ("header only", bytes[..24].to_vec()),
        ("bad magic", {
            let mut b = bytes.clone();
            b[0] = b'X';
            b
        }),
        ("future version", {
            let mut b = bytes.clone();
            b[8..12].copy_from_slice(&99u32.to_le_bytes());
            b
        }),
        ("flipped table checksum", {
            let mut b = bytes.clone();
            b[16] ^= 0xFF;
            b
        }),
        ("truncated tail", bytes[..bytes.len() - 7].to_vec()),
        ("flipped payload byte", {
            let mut b = bytes.clone();
            b[payload_start] ^= 0x01;
            b
        }),
        ("zero-length section", {
            let mut b = bytes.clone();
            b[24 + 16..24 + 24].copy_from_slice(&0u64.to_le_bytes());
            let table = b[24..24 + section_count * 32].to_vec();
            let crc = fnv1a(&table);
            b[16..24].copy_from_slice(&crc.to_le_bytes());
            b
        }),
        ("absurd section count", {
            let mut b = bytes.clone();
            b[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
            b
        }),
    ];

    let mut t = grade10::core::report::Table::new(&["damage", "reader verdict"]);
    for (name, damaged) in &cases {
        let verdict = match decode_trace(damaged) {
            Ok(_) => "ACCEPTED (bug: damage not detected)".to_string(),
            Err(e) => e.to_string(),
        };
        t.row(&[name.to_string(), verdict]);
    }
    check_golden("binary_ingest_damage_table.txt", &t.render());
}

/// The live self-profile table from an actual recorded pipeline run, with
/// volatile fields normalized: pins which stages appear, in what order,
/// under which headers.
#[test]
fn golden_self_profile_live_structure() {
    let run = demo_run();
    let mut report = IngestReport::default();
    let resources = ingest_monitoring(
        &to_raw_series(&run.sim.series, 8),
        &IngestConfig::default(),
        &mut report,
    )
    .expect("clean monitoring");
    let mut cfg = demo_config(false);
    // Single-threaded so the recorded stage set is machine-independent.
    cfg.profile.parallelism = Parallelism::Never;
    let sc = characterize_self(&run.model, &run.rules_tuned, &run.trace, &resources, &cfg)
        .expect("self-characterization");
    let out = normalize_volatile(&self_profile_table(&sc.meta).render());
    check_golden("self_profile_live_structure.txt", &out);
}

/// The self-profile stage ranking under the columnar attribution core
/// (now the only implementation — the legacy backend is retired): same
/// normalization as the live-structure golden, so it documents which
/// pipeline stages the columnar kernels still report — a stage
/// disappearing from its own profile (e.g. a lost obs span) fails here.
#[test]
fn golden_self_profile_columnar_stage_ranking() {
    let run = demo_run();
    let mut report = IngestReport::default();
    let resources = ingest_monitoring(
        &to_raw_series(&run.sim.series, 8),
        &IngestConfig::default(),
        &mut report,
    )
    .expect("clean monitoring");
    let mut cfg = demo_config(false);
    cfg.profile.parallelism = Parallelism::Never;
    let sc = characterize_self(&run.model, &run.rules_tuned, &run.trace, &resources, &cfg)
        .expect("self-characterization");
    let out = normalize_volatile(&self_profile_table(&sc.meta).render());
    check_golden("self_profile_columnar_stage_ranking.txt", &out);
}
