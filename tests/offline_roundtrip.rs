//! The offline workflow end to end: serialize a monitored run's artifacts
//! (events as JSON lines, monitoring as JSON, expert input as a bundle),
//! read everything back, and verify the characterization is identical to
//! analyzing the live objects — the guarantee behind `grade10 demo
//! --export-logs` + `grade10 analyze`.

use grade10::core::model::ModelBundle;
use grade10::core::parse::{build_execution_trace, read_events_json, write_events_json};
use grade10::core::pipeline::{characterize, CharacterizationConfig};
use grade10::core::trace::ResourceTrace;
use grade10::engines::bridge::to_raw_events;
use grade10::engines::models::pregel_resource_model;
use grade10::engines::pregel::PregelConfig;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadSpec};

#[test]
fn serialized_artifacts_reproduce_the_characterization() {
    let run = run_workload(&WorkloadSpec {
        dataset: Dataset::Rmat { scale: 10, seed: 7 },
        algorithm: Algorithm::PageRank { iterations: 3 },
        engine: EngineKind::Giraph(PregelConfig {
            machines: 2,
            threads: 2,
            cores: 2.0,
            ..Default::default()
        }),
    });

    // --- Ship: events.jsonl, resources.json, bundle.json (in memory) ---
    let events = to_raw_events(&run.sim.logs);
    let mut events_file = Vec::new();
    write_events_json(&events, &mut events_file).unwrap();

    let resources = run.resource_trace(8);
    let resources_file = serde_json::to_vec(&resources).unwrap();

    let bundle = ModelBundle {
        framework: "giraph".into(),
        notes: String::new(),
        execution: run.model.clone(),
        resources: pregel_resource_model(),
        rules: run.rules_tuned.clone(),
    };
    let bundle_file = bundle.to_json();

    // --- Analyze from the shipped bytes only ---
    let bundle2 = ModelBundle::from_json(&bundle_file).unwrap();
    let events2 = read_events_json(events_file.as_slice()).unwrap();
    let trace2 = build_execution_trace(&bundle2.execution, &events2).unwrap();
    let resources2: ResourceTrace = serde_json::from_slice(&resources_file).unwrap();

    let cfg = CharacterizationConfig::default();
    let live = characterize(&run.model, &run.rules_tuned, &run.trace, &resources, &cfg);
    let shipped = characterize(&bundle2.execution, &bundle2.rules, &trace2, &resources2, &cfg);

    // Bit-identical pipeline outputs.
    assert_eq!(live.base_makespan, shipped.base_makespan);
    assert_eq!(live.profile.consumption, shipped.profile.consumption);
    assert_eq!(live.issues.len(), shipped.issues.len());
    for (a, b) in live.issues.iter().zip(&shipped.issues) {
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.optimistic_makespan, b.optimistic_makespan);
    }
    // And the traces agree structurally.
    assert_eq!(run.trace.instances().len(), trace2.instances().len());
    assert_eq!(run.trace.blocking().len(), trace2.blocking().len());
}

#[test]
fn shipped_rules_lint_clean_after_round_trip() {
    let run = run_workload(&WorkloadSpec {
        dataset: Dataset::Rmat { scale: 9, seed: 7 },
        algorithm: Algorithm::Bfs { root: 0 },
        engine: EngineKind::Giraph(PregelConfig {
            machines: 2,
            threads: 2,
            cores: 2.0,
            ..Default::default()
        }),
    });
    let bundle = ModelBundle {
        framework: "giraph".into(),
        notes: String::new(),
        execution: run.model.clone(),
        resources: pregel_resource_model(),
        rules: run.rules_tuned.clone(),
    };
    let back = ModelBundle::from_json(&bundle.to_json()).unwrap();
    assert!(back.rules.lint(&back.execution, &back.resources).is_empty());
}
