//! The campaign durability envelope under chaos: interrupted launches at
//! several journal positions and pool widths must resume to a report
//! byte-identical to an uninterrupted run; damaged journal records must
//! be quarantined, never fatal; and content hashing must invalidate
//! exactly the mixes whose spec (or code version) changed.
//!
//! These tests drive `run_campaign` with deterministic synthetic runners
//! so the chaos schedule is exact. The real characterization pipeline
//! behind the `grade10 campaign` subcommand is exercised end-to-end
//! (including a SIGKILL) in `tests/campaign_cli.rs`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use grade10::core::campaign::{
    campaign_status, run_campaign, CampaignOptions, CampaignRun, CampaignSpec, Journal,
    MixAttempt, MixOutcome, MixSpec,
};
use grade10::core::error::Grade10Error;
use grade10::core::supervise::IncidentKind;

/// A 6-mix matrix: 3 algorithms × 2 machine counts.
fn spec() -> CampaignSpec {
    CampaignSpec {
        name: "chaos".into(),
        code_version: "t1".into(),
        algorithms: vec!["pr".into(), "bfs".into(), "wcc".into()],
        datasets: vec!["rmat:6".into()],
        engines: vec!["giraph".into()],
        machines: vec![2, 4],
        seeds: vec![46],
        faults: vec!["none".into()],
    }
}

fn opts(name: &str) -> CampaignOptions {
    let dir = std::env::temp_dir().join(format!("g10-campaign-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut o = CampaignOptions::new(dir);
    o.retry.base = Duration::ZERO; // no real sleeping in tests
    o
}

/// Deterministic synthetic characterization: makespan and issue classes
/// are pure functions of the mix, so any schedule yields the same report.
fn fake_runner(mix: &MixSpec, _a: MixAttempt) -> Result<MixOutcome, Grade10Error> {
    Ok(MixOutcome {
        mix: mix.clone(),
        hash: 0,
        makespan_ns: 500_000_000 * u64::from(mix.machines) + mix.algorithm.len() as u64,
        classes: vec![format!("bottleneck:{}", mix.algorithm)],
        incidents: 0,
        degraded: false,
        attempts: 0,
        mode: String::new(),
    })
}

fn journal_path(o: &CampaignOptions) -> PathBuf {
    o.dir.join("journal.jsonl")
}

/// One uninterrupted reference run; its report is the ground truth every
/// chaos schedule must reproduce. Callers run concurrently, so each
/// baseline gets its own directory.
fn baseline() -> CampaignRun {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let o = opts(&format!("baseline{}", SEQ.fetch_add(1, Ordering::SeqCst)));
    let run = run_campaign(&spec(), &o, fake_runner).expect("baseline run");
    assert!(run.is_clean());
    let _ = std::fs::remove_dir_all(&o.dir);
    run
}

#[test]
fn chaos_resume_matrix_reproduces_the_uninterrupted_report() {
    let reference = baseline();
    // Kill positions: before the first mix record, mid-campaign, and
    // "all records written, report not yet" (simulated below by removing
    // the report files from a complete run — the on-disk state a SIGKILL
    // between the last fsync and the report write leaves behind).
    for width in [1usize, 2, 4] {
        for stop_after in [0usize, 2] {
            let name = format!("kill{stop_after}w{width}");
            let mut o = opts(&name);
            o.width = width;
            o.stop_after = Some(stop_after);
            let first = run_campaign(&spec(), &o, fake_runner).expect("interrupted launch");
            assert!(first.interrupted, "{name}: launch reports interruption");
            assert!(first.report_text.is_empty(), "{name}: no report rendered");
            assert!(
                !o.dir.join("report.txt").exists(),
                "{name}: interrupted launch writes no report file"
            );
            assert!(journal_path(&o).exists(), "{name}: journal survives");

            o.stop_after = None;
            o.resume = true;
            let resumed = run_campaign(&spec(), &o, fake_runner).expect("resume");
            assert!(!resumed.interrupted);
            assert_eq!(
                resumed.cached + resumed.executed,
                6,
                "{name}: whole matrix covered"
            );
            assert_eq!(
                resumed.cached, stop_after,
                "{name}: every mix finished before the kill is served from the store"
            );
            assert_eq!(
                resumed.report_text, reference.report_text,
                "{name}: text report byte-identical to uninterrupted run"
            );
            assert_eq!(
                resumed.report_json, reference.report_json,
                "{name}: json report byte-identical to uninterrupted run"
            );
            let _ = std::fs::remove_dir_all(&o.dir);
        }
    }
}

#[test]
fn killed_after_last_record_before_report_resumes_from_cache_alone() {
    let reference = baseline();
    let mut o = opts("prereport");
    let complete = run_campaign(&spec(), &o, fake_runner).expect("complete run");
    assert!(complete.is_clean());
    // Simulate dying between the final fsync'd journal record and the
    // report write: every outcome is durable, the report files are not.
    std::fs::remove_file(o.dir.join("report.txt")).expect("drop report.txt");
    std::fs::remove_file(o.dir.join("report.json")).expect("drop report.json");
    o.resume = true;
    let resumed = run_campaign(&spec(), &o, |_mix, _a| {
        panic!("resume after a complete journal must not recompute any mix")
    })
    .expect("resume");
    assert_eq!(resumed.cached, 6);
    assert_eq!(resumed.executed, 0);
    assert_eq!(resumed.report_text, reference.report_text);
    assert_eq!(resumed.report_json, reference.report_json);
    assert!(o.dir.join("report.txt").exists(), "report rewritten");
    let _ = std::fs::remove_dir_all(&o.dir);
}

#[test]
fn damaged_journal_records_are_quarantined_and_the_report_is_unaffected() {
    use std::io::Write as _;
    let reference = baseline();
    let mut o = opts("damage");
    o.stop_after = Some(3);
    run_campaign(&spec(), &o, fake_runner).expect("interrupted launch");
    // Corrupt the journal the three ways a dying machine can: flip a byte
    // inside a finished record (checksum mismatch), append a line of
    // garbage, and tear the final record mid-write (no newline).
    let path = journal_path(&o);
    let mut bytes = std::fs::read(&path).expect("read journal");
    let pos = bytes
        .windows(10)
        .position(|w| w == b"\"finished\"")
        .expect("a finished record to damage");
    bytes[pos + 1] = b'F';
    std::fs::write(&path, &bytes).expect("rewrite journal");
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("open journal");
        f.write_all(b"not json at all\n").expect("garbage line");
        f.write_all(b"{\"record\":\"started\",\"mix\":\"to")
            .expect("torn tail");
    }
    o.stop_after = None;
    o.resume = true;
    let resumed = run_campaign(&spec(), &o, fake_runner).expect("resume over damage");
    assert_eq!(
        resumed.quarantined_journal, 3,
        "checksum mismatch + garbage line + torn tail all quarantined"
    );
    assert!(!resumed.interrupted);
    assert_eq!(resumed.cached + resumed.executed, 6);
    assert_eq!(
        resumed.report_text, reference.report_text,
        "damage costs recomputation, never correctness"
    );
    let _ = std::fs::remove_dir_all(&o.dir);
}

#[test]
fn editing_one_axis_value_reruns_exactly_the_affected_mixes() {
    let mut o = opts("invalidate");
    let first = run_campaign(&spec(), &o, fake_runner).expect("first run");
    assert_eq!(first.executed, 6);
    // Swap one algorithm: the two wcc mixes (2 machine counts) change
    // identity, the four pr/bfs mixes keep their content hashes.
    let mut edited = spec();
    edited.algorithms = vec!["pr".into(), "bfs".into(), "cdlp".into()];
    o.resume = true;
    let second = run_campaign(&edited, &o, fake_runner).expect("resume with edited spec");
    assert_eq!(second.executed, 2, "only the replaced axis value re-runs");
    assert_eq!(second.cached, 4, "unchanged mixes served from the store");
    let _ = std::fs::remove_dir_all(&o.dir);
}

#[test]
fn bumping_the_code_version_invalidates_every_stored_outcome() {
    let mut o = opts("version");
    run_campaign(&spec(), &o, fake_runner).expect("first run");
    let mut bumped = spec();
    bumped.code_version = "t2".into();
    o.resume = true;
    let second = run_campaign(&bumped, &o, fake_runner).expect("resume with bumped version");
    assert_eq!(second.executed, 6, "no stale outcome survives a version bump");
    assert_eq!(second.cached, 0);
    let _ = std::fs::remove_dir_all(&o.dir);
}

fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64
}

/// A joiner honors a live lease held by a worker it has never heard of:
/// it drains the rest of the matrix, waits out the stranger's lease, and
/// only reclaims the mix once the deadline passes — then finishes the
/// campaign to the reference report.
#[test]
fn joiner_waits_out_a_live_lease_then_reclaims_the_abandoned_mix() {
    let reference = baseline();
    let mut o = opts("ghostlease");
    std::fs::create_dir_all(&o.dir).unwrap();
    let mixes = spec().expand();
    let ghost_mix = &mixes[0];
    let ghost_hash = ghost_mix.content_hash(&spec().code_version);
    {
        let mut journal = Journal::create(&journal_path(&o), "chaos").expect("create");
        // A ghost worker claimed the first mix and died without a terminal
        // record; its lease has 600 ms left to run.
        journal
            .record_claimed(&ghost_mix.id(), ghost_hash, "ghost", now_ms(), now_ms() + 600)
            .expect("ghost claim");
    }
    o.join = true;
    o.poll_ms = 5;
    o.worker = "joiner".into();
    let t0 = std::time::Instant::now();
    let run = run_campaign(&spec(), &o, fake_runner).expect("join over a live lease");
    assert!(
        t0.elapsed() >= Duration::from_millis(300),
        "the joiner must not claim over a live lease"
    );
    assert!(run.is_clean());
    assert_eq!(run.executed, 6, "the ghost's mix re-ran after its lease expired");
    assert_eq!(run.report_text, reference.report_text);
    assert_eq!(run.report_json, reference.report_json);
    let _ = std::fs::remove_dir_all(&o.dir);
}

/// Lease deadlines are absolute wall-clock stamps from the *claimant's*
/// clock. A claimant whose clock runs behind ours writes a deadline that
/// is already past on our clock — here, an extreme offset: a claim
/// stamped near the epoch. A worker that trusted wall expiry alone would
/// declare the holder dead instantly and double-run the mix. The fix
/// re-anchors every first-seen lease to the observer's monotonic clock
/// and grants a skew tolerance of at least a third of the lease, so the
/// reclaim must wait out that locally-measured window (in which a live
/// holder would have heartbeat) before stealing.
#[test]
fn wall_clock_skew_does_not_let_a_worker_steal_a_fresh_lease() {
    let reference = baseline();
    let mut o = opts("skewlease");
    std::fs::create_dir_all(&o.dir).unwrap();
    let mixes = spec().expand();
    let victim = &mixes[0];
    let victim_hash = victim.content_hash(&spec().code_version);
    {
        let mut journal = Journal::create(&journal_path(&o), "chaos").expect("create");
        // Claimed at 1 ms, deadline 2 ms after the Unix epoch: decades
        // expired by our wall clock the instant it is observed.
        journal
            .record_claimed(&victim.id(), victim_hash, "skewed", 1, 2)
            .expect("skewed claim");
    }
    o.join = true; // join honors foreign claims; resume would abandon them
    o.poll_ms = 5;
    o.lease_ms = 600; // skew tolerance = lease/3 = 200 ms
    o.worker = "observer".into();
    let t0 = std::time::Instant::now();
    let run = run_campaign(&spec(), &o, fake_runner).expect("join across clock skew");
    assert!(
        t0.elapsed() >= Duration::from_millis(200),
        "a wall-expired lease must still be honored for the locally-measured \
         skew tolerance before it is reclaimed (elapsed {:?})",
        t0.elapsed()
    );
    assert!(run.is_clean());
    assert_eq!(
        run.executed, 6,
        "the skewed claimant's mix ran exactly once, after the tolerance lapsed"
    );
    assert_eq!(run.report_text, reference.report_text);
    assert_eq!(run.report_json, reference.report_json);
    let _ = std::fs::remove_dir_all(&o.dir);
}

/// A leader and an in-process joiner drain one matrix cooperatively:
/// every mix runs exactly once across the two, and both assemble the
/// same byte-identical report as a solo run.
#[test]
fn leader_and_joiner_share_the_matrix_without_double_execution() {
    let reference = baseline();
    let mut leader_opts = opts("shared");
    leader_opts.worker = "alpha".into();
    leader_opts.poll_ms = 5;
    let mut joiner_opts = CampaignOptions::new(leader_opts.dir.clone());
    joiner_opts.retry.base = Duration::ZERO;
    joiner_opts.join = true;
    joiner_opts.worker = "beta".into();
    joiner_opts.poll_ms = 5;

    let slow_runner = |mix: &MixSpec, a: MixAttempt| {
        std::thread::sleep(Duration::from_millis(15));
        fake_runner(mix, a)
    };
    let (leader, joiner) = std::thread::scope(|s| {
        let lead = s.spawn(|| run_campaign(&spec(), &leader_opts, slow_runner));
        let join = s.spawn(|| run_campaign(&spec(), &joiner_opts, slow_runner));
        (lead.join().unwrap(), join.join().unwrap())
    });
    let leader = leader.expect("leader run");
    let joiner = joiner.expect("joiner run");
    assert!(leader.is_clean() && joiner.is_clean());
    assert_eq!(
        leader.executed + joiner.executed,
        6,
        "every mix ran exactly once across the fleet"
    );
    for run in [&leader, &joiner] {
        assert_eq!(run.report_text, reference.report_text);
        assert_eq!(run.report_json, reference.report_json);
    }
    let _ = std::fs::remove_dir_all(&leader_opts.dir);
}

/// A mix that killed three consecutive claimants is quarantined as a
/// poisoned-mix incident instead of being handed to a fourth victim, the
/// rest of the matrix is characterized normally, and `campaign_status`
/// accounts for it.
#[test]
fn a_mix_that_kills_three_claimants_is_quarantined_not_rerun() {
    let mut o = opts("poison");
    std::fs::create_dir_all(&o.dir).unwrap();
    let mixes = spec().expand();
    let victim = &mixes[0];
    let victim_hash = victim.content_hash(&spec().code_version);
    {
        // Two claim-then-crash epochs, plus a claim left dangling: the
        // resume below opens epoch four, bringing the death count to 3.
        let mut journal = Journal::create(&journal_path(&o), "chaos").expect("create");
        journal
            .record_claimed(&victim.id(), victim_hash, "w1", now_ms(), now_ms() + 60_000)
            .unwrap();
        journal.record_launch("w2").unwrap();
        journal
            .record_claimed(&victim.id(), victim_hash, "w2", now_ms(), now_ms() + 60_000)
            .unwrap();
        journal.record_launch("w3").unwrap();
        journal
            .record_claimed(&victim.id(), victim_hash, "w3", now_ms(), now_ms() + 60_000)
            .unwrap();
    }
    o.resume = true;
    let run = run_campaign(&spec(), &o, |mix, a| {
        assert_ne!(
            mix.id(),
            mixes[0].id(),
            "a poisoned mix must never reach a runner again"
        );
        fake_runner(mix, a)
    })
    .expect("campaign survives a poisoned mix");
    assert!(!run.is_clean(), "a quarantined mix makes the campaign partial");
    assert_eq!(run.outcomes.len(), 5, "the other five mixes are characterized");
    assert_eq!(run.incidents.len(), 1);
    let incident = &run.incidents[0];
    assert_eq!(incident.kind, IncidentKind::Poisoned);
    assert_eq!(incident.attempts, 3, "the incident counts the dead claimants");
    assert!(
        run.report_text.contains("poisoned"),
        "the ranked report names the quarantine:\n{}",
        run.report_text
    );

    let status = campaign_status(&o.dir).expect("status after the run");
    assert_eq!(status.total, 6);
    assert_eq!(status.poisoned, 1);
    assert_eq!(status.finished, 5);
    assert_eq!(status.pending, 0);
    assert!(status.report_written);
    let _ = std::fs::remove_dir_all(&o.dir);
}

#[test]
fn transient_failure_is_retried_with_backoff_and_recovers() {
    let o = opts("transient");
    let attempts_seen = AtomicUsize::new(0);
    let run = run_campaign(&spec(), &o, |mix, a| {
        if mix.algorithm == "bfs" && mix.machines == 2 && a.index == 0 {
            attempts_seen.fetch_add(1, Ordering::SeqCst);
            panic!("simulated transient crash on first attempt");
        }
        fake_runner(mix, a)
    })
    .expect("run");
    assert_eq!(attempts_seen.load(Ordering::SeqCst), 1, "failed exactly once");
    assert!(run.incidents.is_empty(), "retry absorbed the crash");
    let recovered = run
        .outcomes
        .iter()
        .find(|o| o.mix.algorithm == "bfs" && o.mix.machines == 2)
        .expect("recovered outcome");
    assert_eq!(recovered.attempts, 2);
    assert_eq!(recovered.mode, "lenient", "ladder stepped strict → lenient");
    assert!(run.is_clean(), "a recovered mix still counts as clean");
    let _ = std::fs::remove_dir_all(&o.dir);
}

#[test]
fn permanent_failure_is_an_incident_and_the_report_covers_survivors() {
    let o = opts("permanent");
    let run = run_campaign(&spec(), &o, |mix, a| {
        if mix.algorithm == "wcc" {
            return Err(Grade10Error::MalformedLog("telemetry always rotten".into()));
        }
        fake_runner(mix, a)
    })
    .expect("campaign survives a permanently failing mix");
    assert!(!run.is_clean(), "incidents make the campaign exit partial");
    assert_eq!(run.incidents.len(), 2, "one incident per dead mix");
    assert_eq!(run.outcomes.len(), 4, "survivors still characterized");
    for i in &run.incidents {
        assert_eq!(i.stage, "campaign");
        assert_eq!(i.attempts, 3, "whole retry ladder exhausted first");
    }
    assert!(
        run.report_text.contains("telemetry always rotten"),
        "incident detail reaches the report:\n{}",
        run.report_text
    );
    assert!(
        run.report_text.contains("4 characterized, 2 failed"),
        "summary counts both populations:\n{}",
        run.report_text
    );
    let _ = std::fs::remove_dir_all(&o.dir);
}
