//! Integration test of attribution-rule inference (§V "ongoing work"):
//! learn the rules from one finely monitored calibration run, then verify
//! they work as well as (or better than) the untuned default on the coarse
//! monitoring the production workflow would use.

use grade10::core::attribution::{relative_sampling_error, UpsampleMode};
use grade10::core::infer::{infer_rules, InferenceConfig};
use grade10::core::model::AttributionRule;
use grade10::engines::pregel::PregelConfig;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadRun, WorkloadSpec};

const GT: u64 = 50_000_000;

fn calibration_run() -> WorkloadRun {
    run_workload(&WorkloadSpec {
        dataset: Dataset::Rmat { scale: 10, seed: 5 },
        algorithm: Algorithm::PageRank { iterations: 5 },
        engine: EngineKind::Giraph(PregelConfig {
            machines: 2,
            threads: 4,
            cores: 8.0, // headroom, so thread demand is visible, not clipped
            ..Default::default()
        }),
    })
}

#[test]
fn inference_recovers_one_core_per_compute_thread() {
    let run = calibration_run();
    let fine = run.resource_trace(1);
    let result = infer_rules(&run.model, &run.trace, &fine, &InferenceConfig::default());
    let thread = run.model.find_by_name("thread").unwrap();
    let demand = result
        .demand_of(thread, "cpu")
        .expect("cpu demand for compute threads");
    assert!(
        (demand - 1.0).abs() < 0.25,
        "compute thread demand should be ~1 core, got {demand:.3}"
    );
    let cpu_fit = result
        .fits
        .iter()
        .find(|f| f.resource_kind == "cpu")
        .unwrap();
    assert!(cpu_fit.r2 > 0.7, "cpu fit r2 {}", cpu_fit.r2);
}

#[test]
fn inferred_rules_beat_untuned_on_coarse_monitoring() {
    let run = calibration_run();
    let fine = run.resource_trace(1);
    let inferred = infer_rules(&run.model, &run.trace, &fine, &InferenceConfig::default())
        .to_rule_set();

    let cpu_error = |rules: &grade10::core::model::RuleSet| {
        let profile = run.build_profile(rules, 16, GT, UpsampleMode::DemandGuided);
        let mut up = Vec::new();
        let mut truth = Vec::new();
        for (r, res) in profile.resources.iter().enumerate() {
            if res.kind != "cpu" {
                continue;
            }
            let t = run
                .ground_truth()
                .iter()
                .find(|s| s.spec.kind.name() == "cpu" && Some(s.spec.machine) == res.machine)
                .unwrap();
            let n = profile.consumption[r].len().min(t.samples.len());
            up.extend_from_slice(&profile.consumption[r][..n]);
            truth.extend_from_slice(&t.samples[..n]);
        }
        relative_sampling_error(&up, &truth)
    };

    let untuned = cpu_error(&run.rules_untuned);
    let learned = cpu_error(&inferred);
    assert!(
        learned <= untuned + 1e-9,
        "inferred rules ({learned:.4}) must not lose to untuned ({untuned:.4})"
    );
}

#[test]
fn inference_assigns_no_cpu_demand_to_pure_waiting() {
    // The load phase computes; if a type never overlaps CPU activity it
    // must not get a large CPU coefficient. Sanity-check: thread demand
    // dwarfs whatever (if anything) is assigned to communicate, which only
    // drains the network.
    let run = calibration_run();
    let fine = run.resource_trace(1);
    let result = infer_rules(&run.model, &run.trace, &fine, &InferenceConfig::default());
    let thread = run.model.find_by_name("thread").unwrap();
    let communicate = run.model.find_by_name("communicate").unwrap();
    let dt = result.demand_of(thread, "cpu").unwrap_or(0.0);
    let dc = result.demand_of(communicate, "cpu").unwrap_or(0.0);
    assert!(
        dt > 2.0 * dc,
        "threads ({dt:.3}) should dominate communicate ({dc:.3}) on CPU"
    );
}

#[test]
fn rule_set_policy_is_consistent() {
    let run = calibration_run();
    let fine = run.resource_trace(1);
    let result = infer_rules(&run.model, &run.trace, &fine, &InferenceConfig::default());
    let rules = result.to_rule_set();
    // Every emitted Exact proportion is a valid capacity fraction.
    for d in &result.demands {
        if let AttributionRule::Exact(p) = rules.get(d.phase_type, &d.resource_kind) {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
