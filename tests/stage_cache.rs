//! Incremental recharacterization through the stage cache.
//!
//! The stage cache persists per-machine ingest and attribution results
//! keyed by a content hash of their inputs (event substream, monitoring
//! series, execution model, rule matrix, profile config, `CODE_VERSION`),
//! so a re-run reuses everything whose inputs did not change. These tests
//! pin the three properties that make that trustworthy:
//!
//! 1. **Transparency** — cached, uncached, cold, and warm runs produce
//!    byte-identical characterizations, at every pool width.
//! 2. **Precision** — editing one machine's monitoring invalidates
//!    exactly that machine's ingest and attribution units; every other
//!    unit is served from cache.
//! 3. **Campaign integration** — a warm re-run of an identical campaign
//!    is 100% stage-cache hits with a byte-identical ranked report, and
//!    editing one spec axis recomputes only the affected mixes' units.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use grade10::core::cache::StageCache;
use grade10::core::campaign::{
    run_campaign, CampaignOptions, CampaignSpec, MixAttempt, MixOutcome, MixSpec,
};
use grade10::core::config::Parallelism;
use grade10::core::error::Grade10Error;
use grade10::core::pipeline::{characterize_events, CharacterizationConfig};
use grade10::core::supervise::{characterize_events_supervised, PartialCharacterization};
use grade10::core::trace::{IngestConfig, RawSeries, MILLIS};
use grade10::engines::bridge::{to_raw_events, to_raw_series};
use grade10::engines::pregel::PregelConfig;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadRun, WorkloadSpec};
use grade10::core::parse::RawEvent;

fn tdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("g10-stagecache-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_run(seed: u64) -> WorkloadRun {
    run_workload(&WorkloadSpec {
        dataset: Dataset::Rmat { scale: 6, seed },
        algorithm: Algorithm::PageRank { iterations: 2 },
        engine: EngineKind::Giraph(PregelConfig {
            machines: 2,
            threads: 2,
            cores: 2.0,
            ..Default::default()
        }),
    })
}

fn streams(run: &WorkloadRun) -> (Vec<RawEvent>, Vec<RawSeries>) {
    (
        to_raw_events(&run.sim.logs),
        to_raw_series(&run.sim.series, 8),
    )
}

/// Supervised config at a pinned pool width, with (or without) a cache.
fn sup_cfg(cache: Option<&Arc<StageCache>>, width: usize) -> CharacterizationConfig {
    let mut cfg = CharacterizationConfig::default();
    cfg.profile.slice = 10 * MILLIS;
    cfg.profile.estimate_missing = true;
    cfg.ingest = IngestConfig::lenient();
    cfg.supervise.parallelism = Parallelism::Always;
    cfg.supervise.threads = Some(width);
    cfg.supervise.cache = cache.cloned();
    cfg
}

/// Exhaustive textual dump of a partial characterization — every float —
/// so string equality is bit equality (Debug round-trips `f64` exactly).
fn dump(p: &PartialCharacterization) -> String {
    let mut s = String::new();
    for i in &p.incidents {
        writeln!(s, "incident={i:?}").unwrap();
    }
    writeln!(s, "coverage={:?}", p.coverage).unwrap();
    let profile = &p.characterization.profile;
    writeln!(s, "consumption={:?}", profile.consumption).unwrap();
    writeln!(s, "demand_exact={:?}", profile.demand_exact).unwrap();
    writeln!(s, "demand_variable={:?}", profile.demand_variable).unwrap();
    writeln!(s, "unattributed={:?}", profile.unattributed).unwrap();
    writeln!(s, "overflow={:?}", profile.overflow).unwrap();
    writeln!(s, "estimated={:?}", profile.estimated).unwrap();
    for u in &profile.usages {
        writeln!(s, "usage={u:?}").unwrap();
    }
    writeln!(s, "makespan={}", p.characterization.base_makespan).unwrap();
    writeln!(s, "ingest={:?}", p.characterization.ingest).unwrap();
    s
}

/// One cold supervised run populates the cache; warm re-runs at pool
/// widths 1, 2, and 8 are 100% hits, store nothing, and reproduce the
/// cold characterization byte for byte.
#[test]
fn warm_reruns_are_full_hits_and_byte_identical_across_widths() {
    let run = tiny_run(3);
    let (events, monitoring) = streams(&run);
    let cache_dir = tdir("widths");

    let cold_cache = Arc::new(StageCache::open(&cache_dir).expect("open cache"));
    let cold = characterize_events_supervised(
        &run.model,
        &run.rules_tuned,
        &events,
        &monitoring,
        &sup_cfg(Some(&cold_cache), 1),
    )
    .expect("cold run");
    let cs = cold_cache.stats();
    assert_eq!(cs.hits, 0, "empty cache cannot hit");
    assert!(cs.misses > 0, "supervised units must consult the cache");
    assert_eq!(cs.stores, cs.misses, "every miss is stored");

    // The cache must also be transparent: a cold cached run equals an
    // uncached run bit for bit.
    let uncached = characterize_events_supervised(
        &run.model,
        &run.rules_tuned,
        &events,
        &monitoring,
        &sup_cfg(None, 1),
    )
    .expect("uncached run");
    assert_eq!(dump(&cold), dump(&uncached), "caching changed the output");

    for width in [1usize, 2, 8] {
        let warm_cache = Arc::new(StageCache::open(&cache_dir).expect("reopen cache"));
        let warm = characterize_events_supervised(
            &run.model,
            &run.rules_tuned,
            &events,
            &monitoring,
            &sup_cfg(Some(&warm_cache), width),
        )
        .expect("warm run");
        let ws = warm_cache.stats();
        assert_eq!(ws.misses, 0, "width {width}: warm run must not miss");
        assert_eq!(ws.hits, cs.misses, "width {width}: every unit served from cache");
        assert_eq!(ws.stores, 0, "width {width}: warm run stores nothing");
        assert_eq!(
            dump(&cold),
            dump(&warm),
            "width {width}: warm characterization diverged from cold"
        );
    }
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// Perturbing one machine's monitoring values invalidates exactly that
/// machine's ingest and attribution units — two misses, everything else
/// hits — and the partially-reused result still equals an uncached run
/// over the perturbed input byte for byte.
#[test]
fn one_machine_edit_recomputes_only_that_machines_units() {
    let run = tiny_run(5);
    let (events, monitoring) = streams(&run);
    let cache_dir = tdir("precision");

    let cold_cache = Arc::new(StageCache::open(&cache_dir).expect("open cache"));
    characterize_events_supervised(
        &run.model,
        &run.rules_tuned,
        &events,
        &monitoring,
        &sup_cfg(Some(&cold_cache), 2),
    )
    .expect("cold run");
    let total = cold_cache.stats().misses;
    assert!(total >= 4, "a 2-machine run has at least 4 cacheable units");

    // Halve one measurement on one machine-1 series. Only the *value*
    // changes — timestamps are untouched, so the cross-machine
    // plausibility bound (a duration statistic) and the merged event
    // stream are both unchanged, and no other unit's key moves.
    let mut perturbed = monitoring.clone();
    let victim = perturbed
        .iter_mut()
        .find(|s| s.instance.machine == Some(1) && !s.measurements.is_empty())
        .expect("a machine-1 series to perturb");
    victim.measurements[0].avg *= 0.5;

    let warm_cache = Arc::new(StageCache::open(&cache_dir).expect("reopen cache"));
    let partial = characterize_events_supervised(
        &run.model,
        &run.rules_tuned,
        &events,
        &perturbed,
        &sup_cfg(Some(&warm_cache), 2),
    )
    .expect("perturbed run");
    let ws = warm_cache.stats();
    assert_eq!(
        ws.misses, 2,
        "exactly machine 1's ingest and attribution units recompute"
    );
    assert_eq!(ws.hits, total - 2, "every other unit is served from cache");
    assert_eq!(ws.stores, 2, "the recomputed units are stored");

    let uncached = characterize_events_supervised(
        &run.model,
        &run.rules_tuned,
        &events,
        &perturbed,
        &sup_cfg(None, 2),
    )
    .expect("uncached perturbed run");
    assert_eq!(
        dump(&partial),
        dump(&uncached),
        "mixing cached and recomputed units changed the output"
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// A campaign runner that characterizes the mix through the plain cached
/// pipeline (the same path `grade10 campaign` uses for strict rungs).
fn cached_runner(
    cache: Arc<StageCache>,
) -> impl Fn(&MixSpec, MixAttempt) -> Result<MixOutcome, Grade10Error> + Sync {
    move |mix, _attempt| {
        let run = tiny_run(mix.seed);
        let (events, monitoring) = streams(&run);
        let mut cfg = CharacterizationConfig::default();
        cfg.profile.slice = 10 * MILLIS;
        cfg.supervise.cache = Some(cache.clone());
        let c = characterize_events(&run.model, &run.rules_tuned, &events, &monitoring, &cfg)?;
        Ok(MixOutcome {
            mix: mix.clone(),
            hash: 0,
            makespan_ns: c.base_makespan,
            classes: c.issue_classes(&run.model),
            incidents: 0,
            degraded: false,
            attempts: 0,
            mode: String::new(),
        })
    }
}

fn campaign_spec(seeds: Vec<u64>) -> CampaignSpec {
    CampaignSpec {
        name: "stage-cache".into(),
        code_version: "t1".into(),
        algorithms: vec!["pr".into()],
        datasets: vec!["rmat:6".into()],
        engines: vec!["giraph".into()],
        machines: vec![2],
        seeds,
        faults: vec!["none".into()],
    }
}

fn campaign_opts(name: &str) -> CampaignOptions {
    let mut o = CampaignOptions::new(tdir(name));
    o.retry.base = Duration::ZERO;
    o
}

/// Campaigns sharing one stage cache: an identical re-run (into a fresh
/// campaign directory, so the mix-level store cannot shortcut it) is 100%
/// stage hits and renders a byte-identical ranked report; editing the
/// seed axis recomputes only the changed mix's units.
#[test]
fn warm_campaign_rerun_hits_fully_and_reproduces_the_report() {
    let cache_dir = tdir("campaign-cache");

    let cold_cache = Arc::new(StageCache::open(&cache_dir).expect("open cache"));
    let a = campaign_opts("campaign-cold");
    let cold = run_campaign(&campaign_spec(vec![1, 2]), &a, cached_runner(cold_cache.clone()))
        .expect("cold campaign");
    assert!(cold.is_clean());
    let cs = cold_cache.stats();
    assert_eq!(cs.hits, 0);
    assert_eq!(
        cs.misses, 4,
        "2 mixes × (ingest + profile) stage lookups, all cold"
    );
    assert_eq!(cs.stores, 4);

    // Same spec, fresh campaign directory, shared cache: every stage unit
    // of every mix is reused and the ranked report does not move a byte.
    let warm_cache = Arc::new(StageCache::open(&cache_dir).expect("reopen cache"));
    let b = campaign_opts("campaign-warm");
    let warm = run_campaign(&campaign_spec(vec![1, 2]), &b, cached_runner(warm_cache.clone()))
        .expect("warm campaign");
    let ws = warm_cache.stats();
    assert_eq!(ws.misses, 0, "warm campaign re-run must be all hits");
    assert_eq!(ws.hits, 4);
    assert_eq!(
        warm.report_text, cold.report_text,
        "warm ranked report diverged from cold"
    );
    assert_eq!(warm.report_json, cold.report_json);

    // Edit one axis value (seed 2 → 3): the seed-1 mix's units all hit,
    // the seed-3 mix's units all miss.
    let edit_cache = Arc::new(StageCache::open(&cache_dir).expect("reopen cache"));
    let c = campaign_opts("campaign-edit");
    let edited = run_campaign(&campaign_spec(vec![1, 3]), &c, cached_runner(edit_cache.clone()))
        .expect("edited campaign");
    assert!(edited.is_clean());
    let es = edit_cache.stats();
    assert_eq!(es.hits, 2, "the unchanged mix is served entirely from cache");
    assert_eq!(es.misses, 2, "only the edited mix's units recompute");

    for o in [&a, &b, &c] {
        let _ = std::fs::remove_dir_all(&o.dir);
    }
    let _ = std::fs::remove_dir_all(&cache_dir);
}
