//! Self-characterization acceptance: when Grade10 profiles its own
//! pipeline, the CPU it attributes to its stages must account for the
//! recorded run — the meta-characterization is held to the same
//! conservation standard as any characterization.

use grade10::core::attribution::Parallelism;
use grade10::core::model::{AttributionRule, ExecutionModelBuilder, Repeat, RuleSet};
use grade10::core::obs::Stage;
use grade10::core::pipeline::{characterize_self, CharacterizationConfig};
use grade10::core::report::{self_profile_table, usage_by_type};
use grade10::core::trace::{ExecutionTrace, ResourceInstance, ResourceTrace, TraceBuilder, MILLIS};
use grade10::core::ExecutionModel;

/// A BSP workload big enough that the pipeline runs for tens of
/// milliseconds — per-stage work must dominate the nanosecond-scale gaps
/// between stage spans for the 5% accounting check to be meaningful.
fn workload(steps: usize) -> (ExecutionModel, RuleSet, ExecutionTrace, ResourceTrace) {
    let machines = 4usize;
    let threads = 8usize;
    let mut b = ExecutionModelBuilder::new("job");
    let root = b.root();
    let step = b.child(root, "step", Repeat::Sequential);
    let task = b.child(step, "task", Repeat::Parallel);
    let model = b.build();
    let rules = RuleSet::new().rule(task, "cpu", AttributionRule::Variable(1.0));

    let mut tb = TraceBuilder::new(&model);
    let step_ms = 100u64;
    let total = steps as u64 * step_ms;
    tb.add_phase(&[("job", 0)], 0, total * MILLIS, None, None).unwrap();
    for s in 0..steps {
        let t0 = s as u64 * step_ms;
        tb.add_phase(
            &[("job", 0), ("step", s as u32)],
            t0 * MILLIS,
            (t0 + step_ms) * MILLIS,
            None,
            None,
        )
        .unwrap();
        for t in 0..machines * threads {
            let d = step_ms - (t as u64 % 7) * 5;
            tb.add_phase(
                &[("job", 0), ("step", s as u32), ("task", t as u32)],
                t0 * MILLIS,
                (t0 + d) * MILLIS,
                Some((t / threads) as u16),
                Some((t % threads) as u16),
            )
            .unwrap();
        }
    }
    let trace = tb.build().unwrap();

    let mut rt = ResourceTrace::new();
    for m in 0..machines {
        let cpu = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(m as u16),
            capacity: 8.0,
        });
        let samples: Vec<f64> = (0..total / 400).map(|i| 4.0 + (i % 4) as f64).collect();
        rt.add_series(cpu, 0, 400 * MILLIS, &samples);
    }
    (model, rules, trace, rt)
}

#[test]
fn attributed_stage_cpu_accounts_for_recorded_wall_time() {
    let (model, rules, trace, rt) = workload(150);
    // Single-threaded pipeline: every stage runs on the recorder thread, so
    // attributed CPU-seconds are directly comparable to wall-clock time.
    let mut cfg = CharacterizationConfig::default();
    cfg.profile.parallelism = Parallelism::Never;

    let sc = characterize_self(&model, &rules, &trace, &rt, &cfg).expect("self-characterization");
    let meta = &sc.meta;

    // The recorder emits strict-clean streams by construction.
    assert!(
        meta.result.ingest.is_clean(),
        "meta ingestion repaired something: {:?}",
        meta.result.ingest
    );

    // The single-threaded pipeline stages all ran; no worker spans.
    let stages_seen: Vec<Stage> = Stage::ALL
        .into_iter()
        .filter(|&s| meta.raw.spans.iter().any(|sp| sp.stage == s))
        .collect();
    for want in [
        Stage::Demand,
        Stage::Upsample,
        Stage::Attribute,
        Stage::Bottleneck,
        Stage::Report,
    ] {
        assert!(stages_seen.contains(&want), "stage {want:?} not recorded");
    }
    assert!(
        !stages_seen.contains(&Stage::Worker),
        "worker spans recorded despite Parallelism::Never"
    );

    // Acceptance criterion: attributed CPU per stage sums to within 5% of
    // the total recorded pipeline wall time.
    let usage = usage_by_type(&meta.result.profile, &meta.trace);
    let total_cpu: f64 = Stage::ALL
        .iter()
        .filter_map(|s| meta.model.find_by_name(s.name()))
        .filter_map(|ty| usage.get(&(ty, "cpu".to_string())))
        .sum();
    let wall_secs = meta.raw.end as f64 / 1e9;
    assert!(wall_secs > 0.0, "empty recording");
    let rel = (total_cpu - wall_secs).abs() / wall_secs;
    assert!(
        rel <= 0.05,
        "attributed stage CPU {total_cpu:.6}s vs recorded wall {wall_secs:.6}s \
         ({:.2}% apart, budget 5%)",
        rel * 100.0
    );

    // The report table renders one row per recorded stage plus a total.
    let table = self_profile_table(meta);
    let rendered = table.render();
    assert!(rendered.contains("total"), "{rendered}");
    assert_eq!(table.len(), stages_seen.len() + 1, "{rendered}");

    // The subject characterization is unaffected by being recorded: its
    // summary matches a plain run's.
    let plain = grade10::core::pipeline::characterize(&model, &rules, &trace, &rt, &cfg);
    assert_eq!(sc.summary, plain.summary(&model));
}

#[test]
fn worker_spans_appear_under_parallel_upsampling() {
    let (model, rules, trace, rt) = workload(40);
    let mut cfg = CharacterizationConfig::default();
    cfg.profile.parallelism = Parallelism::Always;

    let sc = characterize_self(&model, &rules, &trace, &rt, &cfg).expect("self-characterization");
    let meta = &sc.meta;
    assert!(
        meta.raw.spans.iter().any(|s| s.stage == Stage::Worker),
        "no worker spans recorded under Parallelism::Always"
    );
    // Worker spans live on their own recorder threads.
    assert!(meta.raw.num_threads() > 1, "workers share the main thread");
    // Strict meta ingestion still passes with nested worker phases.
    assert!(meta.result.ingest.is_clean());
}
