//! Property tests for the binary trace container.
//!
//! Two contracts, each driven by seeded ChaCha8 generators so failures
//! reproduce from the printed seed:
//!
//! 1. **Round trip**: any generated event stream (with or without
//!    monitoring data) encodes, writes, memory-maps, and decodes back to
//!    exactly the structures that went in — floats included, because they
//!    travel as raw bits.
//! 2. **Damage never panics**: truncation at every prefix length, random
//!    single-byte flips, wrong magic/version, zero-length sections — every
//!    corruption either decodes to the original (a flip in unreferenced
//!    padding cannot be detected, but there is none) or returns a
//!    classified `Grade10Error`. The decoder must never panic and never
//!    silently return different data, mirroring the journal-damage
//!    quarantine tests in `tests/campaign.rs`.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use grade10::core::parse::{RawEvent, RawEventKind, RawPath};
use grade10::core::trace::binary::{
    decode_trace, encode_trace, read_trace_file, write_trace_file, FORMAT_VERSION, MAGIC,
};
use grade10::core::trace::{Measurement, ResourceIdx, ResourceInstance, ResourceTrace};
use grade10::core::Grade10Error;

fn gen_path(rng: &mut ChaCha8Rng) -> RawPath {
    let names = ["job", "superstep", "compute", "communicate", "barrier"];
    let depth = rng.gen_range(1..=4);
    (0..depth)
        .map(|d| {
            (
                names[d % names.len()].to_string(),
                rng.gen_range(0..8u32),
            )
        })
        .collect()
}

fn gen_events(rng: &mut ChaCha8Rng) -> Vec<RawEvent> {
    let resources = ["msgq", "barrier", "gc"];
    let n = rng.gen_range(0..200);
    (0..n)
        .map(|_| {
            let kind = match rng.gen_range(0..4) {
                0 => RawEventKind::PhaseStart { path: gen_path(rng) },
                1 => RawEventKind::PhaseEnd { path: gen_path(rng) },
                2 => RawEventKind::BlockStart {
                    resource: resources[rng.gen_range(0..resources.len())].to_string(),
                },
                _ => RawEventKind::BlockEnd {
                    resource: resources[rng.gen_range(0..resources.len())].to_string(),
                },
            };
            RawEvent {
                time: rng.gen_range(0..10_000_000_000u64),
                machine: rng.gen_range(0..16),
                thread: rng.gen_range(0..8),
                kind,
            }
        })
        .collect()
}

fn gen_resources(rng: &mut ChaCha8Rng) -> ResourceTrace {
    let kinds = ["cpu", "net-in", "net-out", "disk"];
    let mut rt = ResourceTrace::new();
    for (i, kind) in kinds.iter().enumerate().take(rng.gen_range(1..=4)) {
        let idx = rt.add_resource(ResourceInstance {
            kind: kind.to_string(),
            machine: if rng.gen_bool(0.8) { Some(i as u16) } else { None },
            // Includes awkward magnitudes: subnormal-adjacent fractions and
            // nanosecond-scale totals must both survive the bit round trip.
            capacity: [0.125, 4.0, 1e-9, 1.25e11][rng.gen_range(0..4)],
        });
        let mut t = rng.gen_range(0..1_000_000u64);
        for _ in 0..rng.gen_range(0..50) {
            let dur = rng.gen_range(1..20_000_000u64);
            rt.add_measurement(
                idx,
                Measurement {
                    start: t,
                    end: t + dur,
                    avg: rng.gen::<f64>() * 4.0,
                },
            );
            t += dur + rng.gen_range(0..1_000_000u64);
        }
    }
    rt
}

fn assert_traces_equal(a_events: &[RawEvent], a_rt: Option<&ResourceTrace>, bytes: &[u8]) {
    let back = decode_trace(bytes).expect("round trip decodes");
    assert_eq!(back.events, a_events);
    match (a_rt, back.resources) {
        (None, None) => {}
        (Some(rt), Some(brt)) => {
            assert_eq!(brt.instances(), rt.instances());
            for r in 0..rt.instances().len() {
                let idx = ResourceIdx(r as u32);
                assert_eq!(brt.measurements(idx), rt.measurements(idx), "resource {r}");
            }
        }
        (a, b) => panic!("resources presence diverged: {:?} vs {:?}", a.is_some(), b.is_some()),
    }
}

/// Contract 1: encode → decode is the identity, for events alone and for
/// events + monitoring, across 40 seeded cases.
#[test]
fn round_trip_random_traces() {
    for case in 0..40u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0xB17_0000 + case);
        let events = gen_events(&mut rng);
        let rt = rng.gen_bool(0.7).then(|| gen_resources(&mut rng));
        let bytes = encode_trace(&events, rt.as_ref());
        assert_traces_equal(&events, rt.as_ref(), &bytes);
    }
}

/// Contract 1 through the file layer: write → mmap → decode is also the
/// identity. One seeded case suffices here; the in-memory sweep above
/// covers the combinatorics and the file layer adds only I/O.
#[test]
fn round_trip_via_mmap_file() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB17_F11E);
    let events = gen_events(&mut rng);
    let rt = gen_resources(&mut rng);
    let dir = std::env::temp_dir().join(format!("grade10-binfmt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.g10t");
    write_trace_file(&path, &events, Some(&rt)).unwrap();
    let back = read_trace_file(&path).expect("mmap read decodes");
    assert_eq!(back.events, events);
    let brt = back.resources.expect("resources section present");
    assert_eq!(brt.instances(), rt.instances());
    std::fs::remove_dir_all(&dir).ok();
}

/// Encoding is deterministic: the same input yields the same bytes, so
/// content-hash caching of binary traces is sound.
#[test]
fn encoding_is_deterministic() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB17_DE7E);
    let events = gen_events(&mut rng);
    let rt = gen_resources(&mut rng);
    let a = encode_trace(&events, Some(&rt));
    let b = encode_trace(&events, Some(&rt));
    assert_eq!(a, b);
}

/// Contract 2a: every truncation of a valid trace is rejected with an
/// error — never a panic, never a silent partial decode.
#[test]
fn every_truncation_errors_recoverably() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB17_0100);
    let events = gen_events(&mut rng);
    let rt = gen_resources(&mut rng);
    let bytes = encode_trace(&events, Some(&rt));
    for keep in 0..bytes.len() {
        match decode_trace(&bytes[..keep]) {
            Err(Grade10Error::Serialization(_)) | Err(Grade10Error::InvalidMonitoring(_)) => {}
            Err(other) => panic!("prefix {keep}: unexpected error class {other:?}"),
            Ok(_) => panic!("prefix {keep}: truncated trace decoded successfully"),
        }
    }
}

/// Contract 2b: random single-byte flips anywhere in the file either
/// fail with a classified error or (never observed, but permitted only
/// if) decode to the exact original. Panics and silent corruption are
/// the two forbidden outcomes.
#[test]
fn random_byte_flips_never_panic_or_corrupt() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB17_0200);
    let events = gen_events(&mut rng);
    let rt = gen_resources(&mut rng);
    let bytes = encode_trace(&events, Some(&rt));
    for case in 0..300 {
        let mut damaged = bytes.clone();
        let pos = rng.gen_range(0..damaged.len());
        let bit = 1u8 << rng.gen_range(0..8);
        damaged[pos] ^= bit;
        match decode_trace(&damaged) {
            Err(_) => {}
            Ok(back) => {
                // FNV-1a is not cryptographic; a flip that survives all
                // checksums must still decode to identical data.
                assert_eq!(
                    back.events, events,
                    "case {case}: flip at byte {pos} silently changed events"
                );
            }
        }
    }
}

/// Contract 2c: the specific header-damage taxonomy from the format
/// spec — wrong magic, unsupported version, flipped table checksum,
/// flipped section checksum, zero-length section, absurd section count.
#[test]
fn header_damage_taxonomy() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB17_0300);
    let events = gen_events(&mut rng);
    let bytes = encode_trace(&events, None);

    let expect_err = |mutation: &dyn Fn(&mut Vec<u8>), what: &str| {
        let mut damaged = bytes.clone();
        mutation(&mut damaged);
        let err = decode_trace(&damaged).expect_err(what);
        assert!(
            matches!(err, Grade10Error::Serialization(_)),
            "{what}: wrong error class {err:?}"
        );
        err.to_string()
    };

    let msg = expect_err(&|b| b[0] = b'X', "wrong magic accepted");
    assert!(msg.contains("magic"), "{msg}");

    let msg = expect_err(
        &|b| b[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes()),
        "future version accepted",
    );
    assert!(msg.contains("version"), "{msg}");

    let msg = expect_err(&|b| b[16] ^= 0xFF, "flipped table checksum accepted");
    assert!(msg.contains("checksum"), "{msg}");

    // Flip one byte inside the first section's payload: its checksum must
    // catch it. The first section starts right after the table.
    let count = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
    let payload_start = 24 + count * 32;
    let msg = expect_err(&|b| b[payload_start] ^= 0x01, "payload flip accepted");
    assert!(msg.contains("checksum"), "{msg}");

    // Zero out the first section's length (offset 16 within its entry) and
    // re-seal the table checksum, so the *zero-length* check itself fires
    // rather than the checksum shortcut.
    let msg = expect_err(
        &|b| {
            b[24 + 16..24 + 24].copy_from_slice(&0u64.to_le_bytes());
            let table = b[24..24 + count * 32].to_vec();
            let crc = grade10::core::hash::fnv1a(&table);
            b[16..24].copy_from_slice(&crc.to_le_bytes());
        },
        "zero-length section accepted",
    );
    assert!(msg.contains("zero length"), "{msg}");

    let msg = expect_err(
        &|b| {
            b[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        },
        "absurd section count accepted",
    );
    assert!(msg.contains("section"), "{msg}");

    // Empty file and bare header are both short reads, not panics.
    assert!(decode_trace(&[]).is_err());
    assert!(decode_trace(&bytes[..24]).is_err());
    // Sanity: MAGIC is what the spec says, so external tooling can probe.
    assert_eq!(&bytes[..8], &MAGIC);
}
