//! Quickstart: characterize a hand-written execution trace in ~60 lines.
//!
//! Shows the minimal Grade10 workflow without any engine: define an
//! execution model and attribution rules, describe one execution (phases +
//! a blocking event + coarse monitoring), and let [`characterize`] find the
//! bottlenecks and rank the what-if fixes.
//!
//! Run with: `cargo run --release --example quickstart`

use grade10::core::model::{AttributionRule, ExecutionModelBuilder, Repeat, RuleSet};
use grade10::core::pipeline::{characterize, CharacterizationConfig};
use grade10::core::trace::{ResourceInstance, ResourceTrace, TraceBuilder, MILLIS};

fn main() {
    // 1. Execution model: a job = load, then two parallel workers, then a
    //    write-out phase.
    let mut b = ExecutionModelBuilder::new("job");
    let root = b.root();
    let load = b.child(root, "load", Repeat::Once);
    let process = b.child(root, "process", Repeat::Once);
    let worker = b.child(process, "worker", Repeat::Parallel);
    let write = b.child(root, "write", Repeat::Once);
    b.edge(load, process);
    b.edge(process, write);
    let model = b.build();

    // 2. Attribution rules: workers each demand exactly one of 4 cores;
    //    load and write have unknown (variable) demand.
    let rules = RuleSet::new()
        .with_default(AttributionRule::None)
        .rule(load, "cpu", AttributionRule::Variable(1.0))
        .rule(worker, "cpu", AttributionRule::Exact(0.25))
        .rule(write, "cpu", AttributionRule::Variable(1.0));

    // 3. One execution: load 0-100 ms, two imbalanced workers (100-300 and
    //    100-500 ms, the second GC-blocked for 80 ms), write 500-600 ms.
    let mut tb = TraceBuilder::new(&model);
    tb.add_phase(&[("job", 0)], 0, 600 * MILLIS, None, None).unwrap();
    tb.add_phase(&[("job", 0), ("load", 0)], 0, 100 * MILLIS, Some(0), Some(0))
        .unwrap();
    tb.add_phase(&[("job", 0), ("process", 0)], 100 * MILLIS, 500 * MILLIS, None, None)
        .unwrap();
    tb.add_phase(
        &[("job", 0), ("process", 0), ("worker", 0)],
        100 * MILLIS,
        300 * MILLIS,
        Some(0),
        Some(0),
    )
    .unwrap();
    let w1 = tb
        .add_phase(
            &[("job", 0), ("process", 0), ("worker", 1)],
            100 * MILLIS,
            500 * MILLIS,
            Some(0),
            Some(1),
        )
        .unwrap();
    tb.add_blocking(w1, "gc", 200 * MILLIS, 280 * MILLIS);
    tb.add_phase(&[("job", 0), ("write", 0)], 500 * MILLIS, 600 * MILLIS, Some(0), Some(0))
        .unwrap();
    let trace = tb.build().unwrap();

    // 4. Coarse monitoring: one 4-core CPU sampled every 100 ms.
    let mut rt = ResourceTrace::new();
    let cpu = rt.add_resource(ResourceInstance {
        kind: "cpu".into(),
        machine: Some(0),
        capacity: 4.0,
    });
    rt.add_series(cpu, 0, 100 * MILLIS, &[3.2, 2.0, 1.2, 1.0, 1.0, 0.8]);

    // 5. Characterize.
    let result = characterize(&model, &rules, &trace, &rt, &CharacterizationConfig::default());

    println!("baseline makespan: {:.2}s", result.base_makespan as f64 / 1e9);
    println!("issues, most impactful first:");
    for line in result.summary(&model) {
        println!("  - {line}");
    }
    println!(
        "\nworker 1 spent {:.0} ms blocked on GC; balancing the workers and removing \
         that pause are the levers Grade10 quantifies above.",
        result
            .bottlenecks
            .blocking
            .iter()
            .map(|b| b.blocked_secs)
            .sum::<f64>()
            * 1e3
    );
}
