//! Learning attribution rules instead of writing them (§V).
//!
//! The paper lists rule inference as ongoing work: expert input takes a
//! week per framework. This example runs one *calibration* workload with
//! fine-grained monitoring, learns the (phase type × resource kind) demand
//! coefficients by non-negative least squares, and prints the recovered
//! rule set next to the expert-written one.
//!
//! Run with: `cargo run --release --example infer_rules`

use grade10::core::infer::{infer_rules, InferenceConfig};
use grade10::core::model::AttributionRule;
use grade10::core::report::Table;
use grade10::engines::pregel::PregelConfig;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadSpec};

fn rule_str(rule: AttributionRule) -> String {
    match rule {
        AttributionRule::None => "-".into(),
        AttributionRule::Exact(p) => format!("Exact {:.1}%", 100.0 * p),
        AttributionRule::Variable(w) => format!("Var {w:.2}"),
    }
}

fn main() {
    // One calibration run, monitored at 50 ms (the analysis timeslice).
    let cfg = PregelConfig {
        machines: 2,
        threads: 4,
        cores: 8.0,
        ..Default::default()
    };
    let run = run_workload(&WorkloadSpec {
        dataset: Dataset::Rmat { scale: 11, seed: 3 },
        algorithm: Algorithm::PageRank { iterations: 6 },
        engine: EngineKind::Giraph(cfg),
    });
    println!(
        "calibration run: {} ({:.1}s simulated)",
        run.spec.name(),
        run.sim.end_time.as_secs_f64()
    );

    let fine = run.resource_trace(1); // no downsampling: slice-granular
    let result = infer_rules(&run.model, &run.trace, &fine, &InferenceConfig::default());

    println!("\nfit quality per resource kind:");
    for f in &result.fits {
        println!(
            "  {:<8} r2 = {:.3} over {} observations",
            f.resource_kind, f.r2, f.observations
        );
    }

    let learned = result.to_rule_set();
    println!("\nlearned vs expert rules (leaf phase types, cpu):");
    let mut table = Table::new(&["phase type", "learned", "expert"]);
    for name in ["thread", "communicate", "load", "output"] {
        let ty = run.model.find_by_name(name).unwrap();
        table.row(&[
            name.to_string(),
            rule_str(learned.get(ty, "cpu")),
            rule_str(run.rules_tuned.get(ty, "cpu")),
        ]);
    }
    println!("{}", table.render());
    println!(
        "The expert wrote Exact(1/cores) for compute threads; the fit recovers the \
         same one-core-per-thread demand from data alone."
    );
}
