//! Bringing your own system under test.
//!
//! Grade10's models are the only framework-specific input (§III-B, §V):
//! this example characterizes a hypothetical dataflow engine that Grade10
//! has never seen, from logs shipped as JSON lines — the offline workflow a
//! real deployment would use (collect logs in production, analyze later).
//!
//! Run with: `cargo run --release --example custom_model`

use grade10::core::model::{AttributionRule, ExecutionModelBuilder, Repeat, RuleSet};
use grade10::core::parse::{build_execution_trace, read_events_json, write_events_json, RawEvent, RawEventKind};
use grade10::core::pipeline::{characterize, CharacterizationConfig};
use grade10::core::trace::{Nanos, ResourceInstance, ResourceTrace, MILLIS};

/// Pretend these JSON lines arrived from a production log shipper.
fn fake_log_stream() -> Vec<u8> {
    let phase = |time: Nanos, machine: u16, thread: u16, path: &[(&str, u32)], start: bool| {
        let path = path.iter().map(|(n, k)| (n.to_string(), *k)).collect();
        RawEvent {
            time,
            machine,
            thread,
            kind: if start {
                RawEventKind::PhaseStart { path }
            } else {
                RawEventKind::PhaseEnd { path }
            },
        }
    };
    let ms = MILLIS;
    let mut events = vec![phase(0, 0, 0, &[("pipeline", 0)], true)];
    // Three sequential stages, each with two mapper tasks on two machines.
    let mut t = 0;
    for stage in 0..3u32 {
        events.push(phase(t, 0, 0, &[("pipeline", 0), ("stage", stage)], true));
        // Mapper durations: machine 1 is consistently slower.
        let d0 = 80 * ms;
        let d1 = (120 + 40 * stage as u64) * ms;
        for (m, d) in [(0u16, d0), (1u16, d1)] {
            events.push(phase(
                t,
                m,
                1,
                &[("pipeline", 0), ("stage", stage), ("mapper", m as u32)],
                true,
            ));
            events.push(phase(
                t + d,
                m,
                1,
                &[("pipeline", 0), ("stage", stage), ("mapper", m as u32)],
                false,
            ));
        }
        let stage_len = d0.max(d1);
        events.push(phase(
            t + stage_len,
            0,
            0,
            &[("pipeline", 0), ("stage", stage)],
            false,
        ));
        t += stage_len;
    }
    events.push(phase(t, 0, 0, &[("pipeline", 0)], false));

    let mut buf = Vec::new();
    write_events_json(&events, &mut buf).expect("serialize");
    buf
}

fn main() {
    // 1. The expert input for the custom engine, written once.
    let mut b = ExecutionModelBuilder::new("pipeline");
    let root = b.root();
    let stage = b.child(root, "stage", Repeat::Sequential);
    let mapper = b.child(stage, "mapper", Repeat::Parallel);
    let model = b.build();
    let rules = RuleSet::new()
        .with_default(AttributionRule::None)
        .rule(mapper, "cpu", AttributionRule::Variable(1.0));

    // 2. Parse the shipped logs.
    let stream = fake_log_stream();
    let events = read_events_json(stream.as_slice()).expect("valid JSON lines");
    println!("parsed {} log events", events.len());
    let trace = build_execution_trace(&model, &events).expect("logs parse");
    println!(
        "reconstructed {} phase instances, makespan {:.2}s",
        trace.instances().len(),
        trace.makespan_end() as f64 / 1e9
    );

    // 3. Monitoring data for the two machines (coarse, 100 ms).
    let mut rt = ResourceTrace::new();
    for m in 0..2u16 {
        let cpu = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(m),
            capacity: 8.0,
        });
        let busy = if m == 0 { 4.0 } else { 7.5 };
        let n = (trace.makespan_end() / (100 * MILLIS)) as usize + 1;
        rt.add_series(cpu, 0, 100 * MILLIS, &vec![busy; n]);
    }

    // 4. Characterize.
    let result = characterize(&model, &rules, &trace, &rt, &CharacterizationConfig::default());
    println!("\nissues:");
    for line in result.summary(&model) {
        println!("  - {line}");
    }
    println!(
        "\nGrade10 needed nothing engine-specific beyond the {}-type execution model \
         and {} attribution rule(s).",
        model.num_types(),
        1
    );
}
