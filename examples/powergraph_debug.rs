//! Debugging the PowerGraph synchronization bug with Grade10 (§IV-D).
//!
//! Reenacts the paper's debugging session: Grade10's imbalance analysis
//! flags CDLP's Gather steps, the per-worker thread durations expose a
//! straggler thread stuck draining a late message stream, and — because our
//! engine exposes the bug as a switch — we can validate the diagnosis by
//! turning the bug off and measuring the speedup.
//!
//! Run with: `cargo run --release --example powergraph_debug`

use grade10::core::compare::compare_traces;
use grade10::core::issues::imbalance::imbalance_groups;
use grade10::core::issues::imbalance::imbalance_issue;
use grade10::core::replay::ReplayConfig;
use grade10::engines::gas::{GasConfig, SyncBugConfig};
use grade10::engines::workload::EnginePhases;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadSpec};

fn spec(bug: Option<SyncBugConfig>) -> WorkloadSpec {
    WorkloadSpec {
        dataset: Dataset::Social {
            vertices: 5000,
            seed: 46,
        },
        algorithm: Algorithm::Cdlp { iterations: 12 },
        engine: EngineKind::PowerGraph(GasConfig {
            sync_bug: bug,
            ..GasConfig::default()
        }),
    }
}

fn main() {
    // Step 1: characterize many jobs cheaply; imbalance stands out.
    let buggy = run_workload(&spec(Some(SyncBugConfig {
        probability: 0.5,
        extra_min: 1.0,
        extra_max: 2.5,
    })));
    let phases = match buggy.phases {
        EnginePhases::Gas(p) => p,
        _ => unreachable!(),
    };
    let gather_imbalance = imbalance_issue(
        &buggy.model,
        &buggy.trace,
        phases.gather_thread,
        &ReplayConfig::default(),
    );
    println!(
        "Grade10 flags Gather imbalance: balancing gather threads would cut the \
         makespan by up to {:.1}%",
        100.0 * gather_imbalance.reduction
    );

    // Step 2: drill into the worst gather step — the outlier pattern.
    let groups = imbalance_groups(&buggy.model, &buggy.trace, phases.gather_thread);
    let worst = groups
        .iter()
        .max_by(|a, b| a.outliers(2.2).slowdown.total_cmp(&b.outliers(2.2).slowdown))
        .unwrap();
    let rep = worst.outliers(2.2);
    println!(
        "worst gather step (iteration {}): {} outlier thread(s); the step runs \
         {:.2}s instead of {:.2}s ({:.2}x slower)",
        buggy.trace.instance(worst.scope).key,
        rep.outliers.len(),
        rep.max_duration as f64 / 1e9,
        rep.max_without_outliers as f64 / 1e9,
        rep.slowdown
    );
    println!(
        "signature: one thread per affected step, always inside Gather — in the real \
         PowerGraph this led to the cross-thread barrier bug (a late message stream \
         drained by a single thread while its peers wait)."
    );

    // Step 3: validate the diagnosis — run the engine with the bug fixed
    // and compare the two runs phase type by phase type.
    let fixed = run_workload(&spec(None));
    let before = buggy.sim.end_time.as_secs_f64();
    let after = fixed.sim.end_time.as_secs_f64();
    println!(
        "\nfix validation: runtime {before:.2}s with the bug, {after:.2}s without \
         ({:.1}% faster)",
        100.0 * (before - after) / before
    );
    assert!(after < before, "the fix must help");

    let cmp = compare_traces(&buggy.model, &buggy.trace, &fixed.trace);
    println!("\nper-phase-type comparison (A = buggy, B = fixed):");
    print!("{}", cmp.table(&buggy.model).render());
    println!("overall speedup: {:.2}x", cmp.speedup());
}
