//! Characterizing a Spark-like dataflow job — the paper's §V extension.
//!
//! A GraphX-flavored PageRank: each iteration becomes a stage of tasks
//! (one per graph partition) followed by a shuffle. Grade10 needs nothing
//! graph-specific — a three-level execution model and two rules — which is
//! the generality claim (R5) §V makes for extending the framework to
//! DAG-based data processing systems.
//!
//! Run with: `cargo run --release --example spark_like`

use grade10::core::pipeline::{characterize, CharacterizationConfig};
use grade10::core::report::{render_gantt, usage_table, GanttConfig};
use grade10::core::parse::build_execution_trace;
use grade10::engines::bridge::{to_raw_events, to_resource_trace};
use grade10::engines::dataflow::{
    dataflow_model, dataflow_rules_tuned, run_dataflow, DataflowConfig, JobSpec,
};
use grade10::graph::algorithms::pagerank;
use grade10::graph::generators::rmat::RmatConfig;
use grade10::graph::partition::EdgeCutPartition;

fn main() {
    // The workload: PageRank over an R-MAT graph, executed for real to get
    // per-iteration per-partition work, then mapped to stages/tasks.
    let cfg = DataflowConfig::default();
    let graph = RmatConfig::graph500(12, 46).generate();
    let partitions = cfg.machines * cfg.executors * 2; // 2x over-decomposition
    let part = EdgeCutPartition::hash(&graph, partitions);
    let pr = pagerank(&graph, &part, 8, 0.85);
    let job = JobSpec::from_work_profile(&pr.profile, 1.0e-4, 200.0, cfg.machines);
    println!(
        "job: {} stages, {} tasks/stage, on {} machines x {} executors",
        job.stages.len(),
        partitions,
        cfg.machines,
        cfg.executors
    );

    let out = run_dataflow(&job, &cfg);
    println!("simulated runtime: {:.2}s", out.end_time.as_secs_f64());

    let (model, phases) = dataflow_model();
    let rules = dataflow_rules_tuned(&phases, cfg.cores);
    let trace = build_execution_trace(&model, &to_raw_events(&out.logs)).expect("logs parse");
    let resources = to_resource_trace(&out.series, 8);
    let result = characterize(&model, &rules, &trace, &resources, &CharacterizationConfig::default());

    println!("\nattributed consumption by phase type:");
    print!("{}", usage_table(&result.profile, &model, &trace).render());
    println!("\nissues, most impactful first:");
    for line in result.summary(&model) {
        println!("  - {line}");
    }
    println!("\nfirst stages (gantt, 2 levels):");
    print!(
        "{}",
        render_gantt(
            &model,
            &trace,
            &GanttConfig {
                max_depth: 1,
                max_rows: 12,
                ..Default::default()
            }
        )
    );
}
