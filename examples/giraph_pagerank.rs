//! End-to-end characterization of PageRank on the Giraph-like engine.
//!
//! The paper's primary use case: run a workload on a system under test,
//! collect its logs and coarse monitoring, and produce a fine-grained
//! profile with bottlenecks and ranked performance issues. Everything here
//! goes through the public workload API of `grade10-engines`.
//!
//! Run with: `cargo run --release --example giraph_pagerank`

use grade10::core::attribution::UpsampleMode;
use grade10::core::indicator::indicator_rows;
use grade10::core::pipeline::{characterize, CharacterizationConfig};
use grade10::core::report::render_series;
use grade10::core::trace::ResourceIdx;
use grade10::engines::pregel::PregelConfig;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec {
        dataset: Dataset::Rmat { scale: 12, seed: 46 },
        algorithm: Algorithm::PageRank { iterations: 8 },
        engine: EngineKind::Giraph(PregelConfig::default()),
    };
    println!("running {} on the simulated cluster...", spec.name());
    let run = run_workload(&spec);
    println!(
        "done: {} supersteps, runtime {:.2}s, {} GC pauses, {} of queue stalls",
        run.work.num_iterations(),
        run.sim.end_time.as_secs_f64(),
        run.sim.stats.gc_pauses.len(),
        run.sim.stats.queue_stall_time,
    );

    // Grade10's inputs: the parsed execution trace plus monitoring data at
    // 8x the analysis timeslice (the paper's recommended ratio).
    let resources = run.resource_trace(8);
    let cfg = CharacterizationConfig {
        profile: grade10::core::attribution::ProfileConfig {
            slice: 10_000_000,
            upsample: UpsampleMode::DemandGuided,
            ..Default::default()
        },
        ..Default::default()
    };
    let result = characterize(&run.model, &run.rules_tuned, &run.trace, &resources, &cfg);

    println!("\n== profile ==");
    println!(
        "{} phase instances, {} timeslices, {} resources",
        run.trace.instances().len(),
        result.profile.grid.num_slices(),
        result.profile.resources.len()
    );
    // CPU utilization of machine 0 over time.
    if let Some(r) = result
        .profile
        .resources
        .iter()
        .position(|r| r.kind == "cpu" && r.machine == Some(0))
    {
        let cap = result.profile.resources[r].capacity;
        println!(
            "cpu@0 utilization:\n{}",
            render_series(
                &["cores"],
                &[&result.profile.consumption[r]],
                cap,
                100
            )
        );
        let _ = ResourceIdx(r as u32);
    }

    println!("== blocked time by phase type ==");
    for ((ty, res), secs) in result.bottlenecks.blocked_time_by_type(&run.trace) {
        if secs > 0.05 {
            println!("  {} blocked on {res} for {secs:.2}s", run.model.type_path(ty));
        }
    }

    println!("\n== issues, most impactful first ==");
    for line in result.summary(&run.model) {
        println!("  - {line}");
    }

    // Indicator view (a §V extension): the machine run queue while each
    // phase type executed. Compute threads should see the deepest queues.
    if let Some(runq) = resources.find("runq", Some(0)) {
        println!("\n== runnable-thread exposure per phase type (machine 0) ==");
        for (path, mean) in indicator_rows(&run.model, &run.trace, &resources, runq) {
            println!("  {path:<55} {mean:>5.1} runnable");
        }
    }
}
