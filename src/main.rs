//! `grade10` — command-line front end for the characterization pipeline.
//!
//! ```text
//! grade10 demo [--engine giraph|powergraph|spark]
//!              [--algorithm pr|bfs|wcc|cdlp|sssp|lcc|prc]
//!              [--dataset rmat:SCALE|social:VERTICES] [--seed N] [--gantt]
//!              [--work-profile] [--export-logs DIR] [--html FILE]
//!              [--inject CLASS[,CLASS...]] [--fault-seed N] [--lenient]
//!              [--partial] [--deadline-ms N] [--max-retries N]
//!              [--threads N] [--self-profile] [--self-export DIR]
//!     Run a simulated workload end to end and print the characterization;
//!     optionally ship the run's logs and monitoring as files that
//!     `grade10 analyze` (and any other tooling) can consume. `--inject`
//!     corrupts the collected streams with seeded faults (clock-skew,
//!     reorder, drop, duplicate, truncate, monitoring, machine-missing,
//!     timestamp-bomb, `all` for the repairable stream damage, or `hostile`
//!     for everything); `--lenient` repairs the damage instead of rejecting
//!     it. `--partial` runs the pipeline *supervised*: per-machine units
//!     are isolated (panics captured, deadlines enforced, grid budgets
//!     checked), failures degrade or drop units instead of aborting, and
//!     the report ends with an incident log and a coverage table.
//!     `--deadline-ms` bounds each supervised unit's wall-clock time (off
//!     by default); `--max-retries` bounds the degradation ladder
//!     (default 2). `--threads N` pins the worker-pool width used by both
//!     the upsampling fan-out and supervised per-machine units; it beats
//!     the `GRADE10_THREADS` environment variable, which beats the machine
//!     size. Results are byte-identical at any width.
//!     `--self-profile` additionally records the pipeline's own execution
//!     and prints Grade10's characterization of itself; `--self-export DIR`
//!     dumps that meta-trace (model + events + monitoring) in the offline
//!     formats so `grade10 analyze` can round-trip it.
//!
//! grade10 campaign --spec FILE --dir DIR [--resume] [--threads N]
//!                  [--lenient] [--workers N] [--lease-ms N] [--worker NAME]
//!                  [--cache DIR|--no-cache]
//! grade10 campaign --join DIR [--threads N] [--lease-ms N] [--worker NAME]
//!                  [--cache DIR|--no-cache]
//! grade10 campaign --status DIR
//!     Run a screening campaign: a declarative TOML/JSON spec (workload ×
//!     dataset × engine × machines × seed × fault plan) expands into a mix
//!     matrix and every mix is characterized under a durable robustness
//!     envelope. Finished mixes are stored under a content hash of their
//!     spec entry and the code version; an append-only, checksummed
//!     journal write-ahead-logs progress with fsync'd completion markers.
//!     A killed campaign resumes with `--resume` without recomputing
//!     finished mixes, and the final report (`DIR/report.txt` +
//!     `DIR/report.json`, ranking mixes by makespan and flagging configs
//!     with unshared bottleneck classes) is byte-identical to an
//!     uninterrupted run. Failing mixes retry with bounded backoff down a
//!     degradation ladder (strict → lenient → partial); a mix that
//!     exhausts the ladder becomes a campaign-level incident instead of
//!     aborting the campaign.
//!
//!     The fleet can span processes and machines: `--workers N` spawns
//!     N−1 peer processes against the same directory, and any process
//!     sharing the filesystem can join a live campaign with `--join DIR`
//!     (it reads the matrix from `DIR/campaign.json`). Workers coordinate
//!     purely through the journal — each mix is leased via a `claimed`
//!     record and heartbeat with `renewed` (`--lease-ms`, default 30s),
//!     so a SIGKILLed worker's lease expires and a peer reclaims its mix;
//!     a mix that kills several consecutive claimants is quarantined as a
//!     poisoned-mix incident instead of crash-looping the fleet. The
//!     ranked report stays byte-identical regardless of worker count or
//!     kill schedule. `--status DIR` prints a read-only progress summary
//!     (finished/claimed/stale/failed/poisoned/pending), safe while
//!     workers are live.
//!
//!     Below the mix level, per-machine ingest and attribution results
//!     are content-hash cached in a stage cache (`DIR/stage-cache` by
//!     default; `--cache DIR` relocates it, `--no-cache` disables it), so
//!     re-running after editing one spec axis recomputes only the
//!     affected units. A summary line on stderr reports hits, misses,
//!     stores, and the hit rate; cached runs are byte-identical to cold
//!     ones.
//!
//! grade10 export-model --engine giraph|powergraph [-o FILE]
//!     Write the built-in expert input (execution model, resource model,
//!     attribution rules) as a reusable JSON bundle.
//!
//! grade10 analyze --model BUNDLE.json
//!                 (--events EVENTS.jsonl --resources RESOURCES.json
//!                  | --trace TRACE.g10t)
//!                 [--slice-ms N] [--gantt]
//!                 [--lenient] [--partial] [--deadline-ms N]
//!                 [--max-retries N] [--threads N]
//!                 [--self-profile] [--self-export DIR]
//!     Offline analysis: characterize logs shipped from a monitored run,
//!     either as the JSON-lines text pair or as one checksummed binary
//!     trace container (`--trace`). With `--lenient`, degraded logs
//!     (out-of-order, truncated, gappy monitoring) are repaired and the
//!     repairs reported instead of aborting the analysis; `--partial`
//!     supervises the run as in `demo`. `--self-profile` works here too —
//!     including on a previously exported self-trace, turning the profiler
//!     on the profiler profiling itself.
//!
//! grade10 convert --events EVENTS.jsonl [--resources RESOURCES.json]
//!                 -o TRACE.g10t
//! grade10 convert --trace TRACE.g10t --out-dir DIR
//!     Translate between the text formats and the versioned,
//!     per-section-checksummed binary trace container (schema in
//!     docs/FORMATS.md). The binary form is one memory-mappable file,
//!     loads without JSON parsing, and detects torn or corrupted data on
//!     open.
//! ```
//!
//! Exit codes: `0` — clean characterization; `2` — the supervised pipeline
//! completed but recorded incidents (the characterization is partial; see
//! its incidents and coverage tables); `1` — fatal error, no
//! characterization produced. `campaign` reuses the same taxonomy: `0` —
//! every mix characterized completely; `2` — the campaign completed but
//! with incidents or partial mixes (the report covers the survivors);
//! `1` — fatal (unreadable spec, broken campaign directory).

use std::collections::HashMap;
use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use grade10::cluster::{FaultClass, FaultPlan, SimDuration};
use grade10::core::campaign::{
    atomic_write, CampaignOptions, CampaignSpec, MixAttempt, MixMode, MixOutcome, MixSpec,
};
use grade10::core::critical_path::critical_path;
use grade10::core::model::ModelBundle;
use grade10::core::obs;
use grade10::core::parse::{build_execution_trace, read_events_json};
use grade10::core::pipeline::{
    characterize, characterize_ingested, characterize_meta, CharacterizationConfig,
    MetaCharacterization,
};
use grade10::core::report::{coverage_table, incident_table, ingest_table, machine_table, render_gantt, render_html_report, self_profile_table, usage_table, GanttConfig, HtmlConfig};
use grade10::core::supervise::{characterize_events_supervised, PartialCharacterization};
use grade10::core::trace::{
    ingest, read_trace_file, write_trace_file, ExecutionTrace, IngestConfig, IngestMode, RawSeries,
    ResourceTrace, MILLIS,
};

/// Count heap allocations per thread so `--self-profile` span records can
/// report them; free when no recording session is active.
#[global_allocator]
static ALLOC: obs::CountingAlloc = obs::CountingAlloc;
use grade10::engines::gas::GasConfig;
use grade10::engines::models::{
    gas_model, gas_resource_model, gas_rules_tuned, pregel_model, pregel_resource_model,
    pregel_rules_tuned,
};
use grade10::engines::pregel::PregelConfig;
use grade10::engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadSpec};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(RunStatus::Clean) => ExitCode::SUCCESS,
        Ok(RunStatus::Partial) => ExitCode::from(2),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// What a completed run reports through the exit code: `Clean` → 0,
/// `Partial` (supervised run with incidents) → 2. Fatal errors exit 1.
enum RunStatus {
    Clean,
    Partial,
}

const USAGE: &str = "usage:
  grade10 demo [--engine giraph|powergraph|spark]
               [--algorithm pr|bfs|wcc|cdlp|sssp|lcc|prc]
               [--dataset rmat:SCALE|social:VERTICES] [--seed N] [--gantt]
               [--work-profile] [--export-logs DIR] [--html FILE]
               [--inject clock-skew|reorder|drop|duplicate|truncate|monitoring|
                         machine-missing|timestamp-bomb|all|hostile[,..]]
               [--fault-seed N] [--lenient]
               [--partial] [--deadline-ms N] [--max-retries N]
               [--threads N] [--self-profile] [--self-export DIR]
  grade10 campaign --spec FILE --dir DIR [--resume] [--threads N]
                   [--lenient] [--workers N] [--lease-ms N] [--worker NAME]
                   [--cache DIR|--no-cache]
  grade10 campaign --join DIR [--threads N] [--lease-ms N] [--worker NAME]
                   [--cache DIR|--no-cache]
  grade10 campaign --status DIR
  grade10 export-model --engine giraph|powergraph [-o FILE]
  grade10 analyze --model BUNDLE.json
                  (--events EVENTS.jsonl --resources RESOURCES.json
                   | --trace TRACE.g10t)
                  [--slice-ms N] [--gantt]
                  [--lenient] [--partial] [--deadline-ms N] [--max-retries N]
                  [--threads N] [--self-profile] [--self-export DIR]
  grade10 convert --events EVENTS.jsonl [--resources RESOURCES.json]
                  -o TRACE.g10t
  grade10 convert --trace TRACE.g10t --out-dir DIR

convert translates between the JSON-lines text formats and the
checksummed binary trace container (see docs/FORMATS.md); analyze
ingests either form.

--partial runs the pipeline supervised: panics, deadline overruns, and
over-budget grids degrade or drop per-machine units instead of aborting,
and the report ends with incident and coverage tables.

campaign runs a declarative mix matrix (TOML/JSON spec) under a durable
envelope: finished mixes are content-hash cached, progress is journaled,
and a killed campaign resumes with --resume without recomputing finished
mixes or changing a byte of the final report. --workers N drains the
matrix with N cooperating processes; any machine sharing the campaign
directory can add workers with --join DIR (ownership is leased through
the journal, so SIGKILLed workers are reclaimed by their peers).
--status DIR prints read-only progress while workers are live.

Campaigns are incremental below the mix level too: per-machine ingest
and attribution results are content-hash cached in a stage cache
(default DIR/stage-cache; relocate with --cache DIR, disable with
--no-cache), so editing one axis of a spec recomputes only the affected
units on the next run. Cached and uncached runs are byte-identical.

exit codes:
  0  clean characterization / campaign
  2  partial: supervised run or campaign completed with incidents
  1  fatal error, no characterization produced";

fn run(args: &[String]) -> Result<RunStatus, String> {
    let (cmd, rest) = args.split_first().ok_or("no command given")?;
    let flags = parse_flags(rest)?;
    match cmd.as_str() {
        "demo" => demo(&flags),
        "campaign" => campaign(&flags),
        "export-model" => export_model(&flags),
        "analyze" => analyze(&flags),
        "convert" => convert(&flags),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Parses `--key value` pairs plus bare `--switch` flags.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    const SWITCHES: &[&str] = &[
        "--gantt",
        "--work-profile",
        "--lenient",
        "--partial",
        "--resume",
        "--self-profile",
        "--no-cache",
    ];
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = &args[i];
        if !key.starts_with('-') {
            return Err(format!("unexpected argument '{key}'"));
        }
        if SWITCHES.contains(&key.as_str()) {
            out.insert(key.clone(), "true".into());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag '{key}' needs a value"))?;
        out.insert(key.clone(), value.clone());
        i += 2;
    }
    Ok(out)
}

fn demo(flags: &HashMap<String, String>) -> Result<RunStatus, String> {
    let seed: u64 = flags
        .get("--seed")
        .map(|s| s.parse().map_err(|_| format!("bad seed '{s}'")))
        .transpose()?
        .unwrap_or(46);
    let dataset = match flags.get("--dataset").map(String::as_str) {
        None => Dataset::Rmat { scale: 12, seed },
        Some(spec) => parse_dataset(spec, seed)?,
    };
    let algorithm = match flags.get("--algorithm") {
        None => Algorithm::PageRank { iterations: 8 },
        Some(name) => parse_algorithm(name)?,
    };
    // The Spark-like dataflow engine has its own job mapping; handle it
    // before the graph-native engines.
    if flags.get("--engine").map(String::as_str) == Some("spark") {
        return demo_spark(dataset, algorithm, flags);
    }
    let engine = match flags.get("--engine").map(String::as_str) {
        None | Some("giraph") => EngineKind::Giraph(PregelConfig::default()),
        Some("powergraph") => EngineKind::PowerGraph(GasConfig::default()),
        Some(other) => return Err(format!("unknown engine '{other}'")),
    };

    let spec = WorkloadSpec {
        dataset,
        algorithm,
        engine,
    };
    // Parse the fault plan before the (expensive) simulation so a typo'd
    // --inject fails fast.
    let fault_plan = parse_fault_plan(flags)?;
    eprintln!("running {} ...", spec.name());
    let run = run_workload(&spec);
    if flags.contains_key("--work-profile") {
        println!("workload iteration profile (whole cluster):");
        let mut t = grade10::core::report::Table::new(&[
            "iter", "active", "edges", "local msgs", "remote msgs", "balance",
        ]);
        for (i, active, edges, local, remote, balance) in run.work.iteration_rows() {
            t.row(&[
                format!("{i}"),
                format!("{active}"),
                format!("{edges}"),
                format!("{local}"),
                format!("{remote}"),
                format!("{balance:.2}"),
            ]);
        }
        println!("{}", t.render());
    }
    eprintln!(
        "done: simulated runtime {:.2}s, {} phase instances",
        run.sim.end_time.as_secs_f64(),
        run.trace.instances().len()
    );

    if let Some(dir) = flags.get("--export-logs") {
        export_logs(&run, dir)?;
    }

    if let Some(plan) = fault_plan {
        // Degraded-collection path: corrupt the streams leaving the
        // simulator, then re-enter through the ingestion layer like any
        // external data would.
        let classes: Vec<&str> = plan.enabled().iter().map(|c| c.name()).collect();
        eprintln!(
            "injecting faults [{}] with seed {}",
            classes.join(", "),
            plan.seed
        );
        let logs = plan.inject_logs(&run.sim.logs);
        let series = plan.inject_series(&run.sim.series);
        let events = grade10::engines::bridge::to_raw_events(&logs);
        let monitoring = grade10::engines::bridge::to_raw_series(&series, 8);
        let cfg = characterization_config(flags, 10)?;
        if flags.contains_key("--partial") {
            return supervised(
                &run.model,
                &run.rules_tuned,
                &events,
                &monitoring,
                &cfg,
                flags,
                &spec.name(),
            );
        }
        let profiler = SelfProfiler::from_flags(flags);
        let input = ingest(&run.model, &events, &monitoring, &cfg.ingest)
            .map_err(|e| ingest_error(&e))?;
        let result = characterize_ingested(&run.model, &run.rules_tuned, &input, &cfg);
        print_characterization(&run.model, &input.trace, &result, flags.contains_key("--gantt"));
        profiler.finish(flags)?;
        if let Some(path) = flags.get("--html") {
            write_html(&run.model, &input.trace, &result, &spec.name(), path)?;
        }
        return Ok(RunStatus::Clean);
    }

    if flags.contains_key("--partial") {
        // Supervised run over the pristine streams: same entry point as the
        // degraded path, so incidents/coverage always have the same shape.
        let events = grade10::engines::bridge::to_raw_events(&run.sim.logs);
        let monitoring = grade10::engines::bridge::to_raw_series(&run.sim.series, 8);
        let cfg = characterization_config(flags, 10)?;
        return supervised(
            &run.model,
            &run.rules_tuned,
            &events,
            &monitoring,
            &cfg,
            flags,
            &spec.name(),
        );
    }

    let resources = run.resource_trace(8);
    let profiler = SelfProfiler::from_flags(flags);
    // Shared flag handling even on the pristine path, so `--threads` reaches
    // the upsampling fan-out and a bad value errors regardless of which
    // branch a command takes.
    let cfg = characterization_config(flags, 10)?;
    let result = characterize(&run.model, &run.rules_tuned, &run.trace, &resources, &cfg);
    print_characterization(&run.model, &run.trace, &result, flags.contains_key("--gantt"));
    profiler.finish(flags)?;
    if let Some(path) = flags.get("--html") {
        write_html(&run.model, &run.trace, &result, &spec.name(), path)?;
    }
    Ok(RunStatus::Clean)
}

/// Runs (or resumes) a screening campaign from a declarative spec file.
fn campaign(flags: &HashMap<String, String>) -> Result<RunStatus, String> {
    if let Some(dir) = flags.get("--status") {
        return campaign_status_cmd(dir);
    }
    if flags.contains_key("--join") && flags.contains_key("--resume") {
        return Err(
            "--join and --resume are mutually exclusive: --resume leads a new epoch over a \
             dead fleet, --join joins a live one"
                .to_string(),
        );
    }
    // A joiner takes everything from the leader's manifest; a leader
    // takes the spec file and records the manifest for joiners.
    let (spec, dir, manifest_mode, manifest_lease) = if let Some(dir) = flags.get("--join") {
        // The leader writes the manifest right after opening the journal;
        // a joiner spawned alongside it polls briefly for both.
        let manifest = std::path::Path::new(dir).join("campaign.json");
        for _ in 0..200 {
            if manifest.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        let (spec, base, lease) =
            grade10::core::campaign::load_manifest(std::path::Path::new(dir))
                .map_err(|e| e.to_string())?;
        (spec, dir.clone(), Some(base), Some(lease))
    } else {
        let spec_path = flags.get("--spec").ok_or("campaign needs --spec FILE")?;
        let dir = flags.get("--dir").ok_or("campaign needs --dir DIR")?;
        let spec =
            CampaignSpec::load(std::path::Path::new(spec_path)).map_err(|e| e.to_string())?;
        (spec, dir.clone(), None, None)
    };
    let mixes = spec.expand();
    // Validate every axis value up front: a typo'd algorithm name should
    // fail the launch, not surface as one incident per affected mix.
    for mix in &mixes {
        validate_mix(mix)?;
    }
    let threads = flags
        .get("--threads")
        .map(|s| {
            s.parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("bad thread count '{s}'"))
        })
        .transpose()?;
    let width = grade10::core::config::resolve_threads(threads, mixes.len());
    // With mixes fanned out across workers, each mix runs its own pipeline
    // single-threaded; nesting pools would oversubscribe the machine.
    let inner_threads = if width > 1 { Some(1) } else { None };
    let mut opts = CampaignOptions::new(std::path::PathBuf::from(&dir));
    opts.resume = flags.contains_key("--resume");
    opts.join = flags.contains_key("--join");
    opts.width = width;
    opts.retry = grade10::core::supervise::SuperviseConfig::default().retry;
    opts.base_mode = manifest_mode.unwrap_or(if flags.contains_key("--lenient") {
        MixMode::Lenient
    } else {
        MixMode::Strict
    });
    if let Some(lease) = manifest_lease {
        opts.lease_ms = lease;
    }
    if let Some(s) = flags.get("--lease-ms") {
        opts.lease_ms = s
            .parse::<u64>()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("bad lease '{s}'"))?;
    }
    if let Some(name) = flags.get("--worker") {
        opts.worker = name.clone();
    }
    let workers: usize = flags
        .get("--workers")
        .map(|s| {
            s.parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("bad worker count '{s}'"))
        })
        .transpose()?
        .unwrap_or(1);
    if workers > 1 && opts.join {
        return Err("--workers spawns joiners; a --join process is already one".to_string());
    }
    eprintln!(
        "campaign {}: {} mixes over {} worker{}{}{}",
        spec.name,
        mixes.len(),
        width,
        if width == 1 { "" } else { "s" },
        if workers > 1 {
            format!(" in each of {workers} processes")
        } else {
            String::new()
        },
        if opts.resume {
            " (resuming)"
        } else if opts.join {
            " (joining)"
        } else {
            ""
        }
    );
    // The stage cache makes re-runs incremental below the mix level:
    // per-machine ingest and attribution units are reused by content
    // hash. It lives beside the store by default so a campaign directory
    // is self-contained; --cache points several campaigns at one shared
    // cache, --no-cache opts out entirely.
    let cache: Option<std::sync::Arc<grade10::core::cache::StageCache>> =
        if flags.contains_key("--no-cache") {
            None
        } else {
            let cache_dir = flags
                .get("--cache")
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| std::path::Path::new(&dir).join("stage-cache"));
            Some(std::sync::Arc::new(
                grade10::core::cache::StageCache::open(&cache_dir).map_err(|e| e.to_string())?,
            ))
        };
    // Peer worker processes join over the shared journal; they poll for
    // the leader's journal, so spawning before run_campaign is safe.
    let children = spawn_peer_workers(&dir, workers, flags)?;
    let run = grade10::core::campaign::run_campaign(&spec, &opts, |mix, attempt| {
        run_mix(mix, attempt, inner_threads, cache.as_ref())
    })
    .map_err(|e| e.to_string())?;
    let mut peers_partial = false;
    for (i, mut child) in children.into_iter().enumerate() {
        let status = child
            .wait()
            .map_err(|e| format!("waiting for worker {}: {e}", i + 2))?;
        match status.code() {
            Some(0) => {}
            Some(2) => peers_partial = true,
            _ => {
                return Err(format!(
                    "worker process {} failed ({status}); see {dir}/worker-{}.log",
                    i + 2,
                    i + 2
                ))
            }
        }
    }
    eprintln!(
        "campaign {}: {} executed, {} cached, {} failed, {} journal records quarantined",
        spec.name, run.executed, run.cached, run.failed, run.quarantined_journal
    );
    if let Some(c) = &cache {
        eprintln!("{}", grade10::core::report::stage_cache_line(&c.stats()));
    }
    print!("{}", run.report_text);
    eprintln!("wrote {dir}/report.txt and {dir}/report.json");
    Ok(if run.is_clean() && !peers_partial {
        RunStatus::Clean
    } else {
        RunStatus::Partial
    })
}

/// Spawns `workers - 1` peer `grade10 campaign --join` processes against
/// `dir`, each logging to `dir/worker-N.log`. The calling process is
/// worker 1.
fn spawn_peer_workers(
    dir: &str,
    workers: usize,
    flags: &HashMap<String, String>,
) -> Result<Vec<std::process::Child>, String> {
    if workers <= 1 {
        return Ok(Vec::new());
    }
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
    let exe = std::env::current_exe().map_err(|e| format!("locating grade10 binary: {e}"))?;
    let mut children = Vec::new();
    for i in 2..=workers {
        let log_path = std::path::Path::new(dir).join(format!("worker-{i}.log"));
        let log = std::fs::File::create(&log_path)
            .map_err(|e| format!("creating {}: {e}", log_path.display()))?;
        let log_err = log
            .try_clone()
            .map_err(|e| format!("cloning log handle: {e}"))?;
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("campaign").arg("--join").arg(dir);
        for key in ["--threads", "--lease-ms", "--cache"] {
            if let Some(v) = flags.get(key) {
                cmd.arg(key).arg(v);
            }
        }
        if flags.contains_key("--no-cache") {
            cmd.arg("--no-cache");
        }
        let child = cmd
            .stdout(log)
            .stderr(log_err)
            .spawn()
            .map_err(|e| format!("spawning worker {i}: {e}"))?;
        children.push(child);
    }
    Ok(children)
}

/// `campaign --status DIR`: print a read-only progress summary derived
/// purely from the journal and store. Safe while workers are live.
fn campaign_status_cmd(dir: &str) -> Result<RunStatus, String> {
    let st = grade10::core::campaign::campaign_status(std::path::Path::new(dir))
        .map_err(|e| e.to_string())?;
    println!("campaign {} in {dir}", st.campaign);
    let mut t = grade10::core::report::Table::new(&["state", "mixes"]);
    t.row(&["finished".to_string(), st.finished.to_string()]);
    t.row(&["claimed".to_string(), st.claimed.to_string()]);
    t.row(&["stale".to_string(), st.stale.to_string()]);
    t.row(&["failed".to_string(), st.failed.to_string()]);
    t.row(&["poisoned".to_string(), st.poisoned.to_string()]);
    t.row(&["pending".to_string(), st.pending.to_string()]);
    print!("{}", t.render());
    println!(
        "{} of {} mixes done; report {}written{}",
        st.finished + st.failed + st.poisoned,
        st.total,
        if st.report_written { "" } else { "not yet " },
        if st.quarantined_journal > 0 {
            format!("; {} journal records quarantined", st.quarantined_journal)
        } else {
            String::new()
        }
    );
    Ok(RunStatus::Clean)
}

/// Checks one mix's axis values against the parsers the runner will use.
fn validate_mix(mix: &MixSpec) -> Result<(), String> {
    let in_mix = |e: String| format!("mix {}: {e}", mix.id());
    parse_algorithm(&mix.algorithm).map_err(in_mix)?;
    parse_dataset(&mix.dataset, mix.seed).map_err(in_mix)?;
    match mix.engine.as_str() {
        "giraph" | "powergraph" => {}
        other => return Err(in_mix(format!("unknown engine '{other}'"))),
    }
    if mix.machines == 0 {
        return Err(in_mix("machines must be at least 1".to_string()));
    }
    if mix.fault != "none" {
        parse_fault_classes(&mix.fault, mix.seed).map_err(in_mix)?;
    }
    Ok(())
}

/// Characterizes one campaign mix at one degradation-ladder rung: simulate
/// the workload, apply the mix's fault plan to the collected streams, then
/// ingest strictly, leniently, or under full supervision per the rung. The
/// scheduler owns retries and fills the outcome's identity fields.
fn run_mix(
    mix: &MixSpec,
    attempt: MixAttempt,
    inner_threads: Option<usize>,
    cache: Option<&std::sync::Arc<grade10::core::cache::StageCache>>,
) -> Result<MixOutcome, grade10::core::Grade10Error> {
    use grade10::core::Grade10Error;
    let bad = Grade10Error::Serialization;
    let dataset = parse_dataset(&mix.dataset, mix.seed).map_err(bad)?;
    let algorithm = parse_algorithm(&mix.algorithm).map_err(bad)?;
    let machines = mix.machines as usize;
    let engine = match mix.engine.as_str() {
        "giraph" => EngineKind::Giraph(PregelConfig {
            machines,
            ..Default::default()
        }),
        "powergraph" => EngineKind::PowerGraph(GasConfig {
            machines,
            ..Default::default()
        }),
        other => return Err(bad(format!("unknown engine '{other}'"))),
    };
    let spec = WorkloadSpec {
        dataset,
        algorithm,
        engine,
    };
    let run = run_workload(&spec);
    let (events, monitoring) = if mix.fault == "none" {
        (
            grade10::engines::bridge::to_raw_events(&run.sim.logs),
            grade10::engines::bridge::to_raw_series(&run.sim.series, 8),
        )
    } else {
        // The fault seed is the mix seed: the damage is part of the mix's
        // identity, deterministic across retries and resumes.
        let plan = parse_fault_classes(&mix.fault, mix.seed).map_err(bad)?;
        let logs = plan.inject_logs(&run.sim.logs);
        let series = plan.inject_series(&run.sim.series);
        (
            grade10::engines::bridge::to_raw_events(&logs),
            grade10::engines::bridge::to_raw_series(&series, 8),
        )
    };
    let mut cfg = CharacterizationConfig {
        profile: grade10::core::attribution::ProfileConfig {
            slice: 10 * MILLIS,
            estimate_missing: attempt.mode != MixMode::Strict,
            threads: inner_threads,
            ..Default::default()
        },
        ingest: IngestConfig {
            mode: if attempt.mode == MixMode::Strict {
                IngestMode::Strict
            } else {
                IngestMode::Lenient
            },
        },
        ..Default::default()
    };
    cfg.supervise.threads = inner_threads;
    cfg.supervise.cache = cache.cloned();
    let (characterization, incidents, degraded) = match attempt.mode {
        MixMode::Strict | MixMode::Lenient => {
            // characterize_events consults the stage cache (and without
            // one runs exactly the ingest + characterize path this branch
            // used before).
            let c = grade10::core::pipeline::characterize_events(
                &run.model,
                &run.rules_tuned,
                &events,
                &monitoring,
                &cfg,
            )?;
            (c, 0, false)
        }
        MixMode::Partial => {
            let p = characterize_events_supervised(
                &run.model,
                &run.rules_tuned,
                &events,
                &monitoring,
                &cfg,
            )?;
            let degraded = !p.is_complete();
            (p.characterization, p.incidents.len() as u32, degraded)
        }
    };
    Ok(MixOutcome {
        mix: mix.clone(),
        hash: 0,
        makespan_ns: characterization.base_makespan,
        classes: characterization.issue_classes(&run.model),
        incidents,
        degraded,
        attempts: 0,
        mode: String::new(),
    })
}

/// Runs the supervised pipeline over raw collected streams, prints the
/// characterization plus the incidents and coverage tables, and maps the
/// outcome to an exit status: `Partial` when any incident was recorded.
fn supervised(
    model: &grade10::core::model::ExecutionModel,
    rules: &grade10::core::model::RuleSet,
    events: &[grade10::core::parse::RawEvent],
    monitoring: &[RawSeries],
    cfg: &CharacterizationConfig,
    flags: &HashMap<String, String>,
    title: &str,
) -> Result<RunStatus, String> {
    let profiler = SelfProfiler::from_flags(flags);
    let p = characterize_events_supervised(model, rules, events, monitoring, cfg)
        .map_err(|e| ingest_error(&e))?;
    print_characterization(
        model,
        &p.trace,
        &p.characterization,
        flags.contains_key("--gantt"),
    );
    print_supervision(&p);
    profiler.finish(flags)?;
    if let Some(path) = flags.get("--html") {
        write_html(model, &p.trace, &p.characterization, title, path)?;
    }
    Ok(if p.is_complete() {
        RunStatus::Clean
    } else {
        RunStatus::Partial
    })
}

/// Prints the supervision epilogue: coverage summary, incident table, and
/// the per-machine / per-stage coverage table.
fn print_supervision(p: &PartialCharacterization) {
    println!("\nsupervision summary: {}", p.coverage.summary());
    if p.incidents.is_empty() {
        println!("  no incidents");
    } else {
        println!("\nincidents:");
        print!("{}", incident_table(&p.incidents).render());
    }
    println!("\ncoverage:");
    print!("{}", coverage_table(&p.coverage).render());
}

/// Builds the pipeline config from the shared CLI flags: `--lenient` picks
/// the ingestion mode and, with it, demand-based estimation of slices whose
/// monitoring was lost; `--deadline-ms` and `--max-retries` tune the
/// supervision layer used by `--partial`; `--threads` pins the worker-pool
/// width of both the upsampling fan-out and the supervised per-machine
/// units (beating `GRADE10_THREADS`, which beats the machine size).
fn characterization_config(
    flags: &HashMap<String, String>,
    slice_ms: u64,
) -> Result<CharacterizationConfig, String> {
    let lenient = flags.contains_key("--lenient");
    let mut supervise = grade10::core::supervise::SuperviseConfig::default();
    if let Some(s) = flags.get("--deadline-ms") {
        let ms: u64 = s.parse().map_err(|_| format!("bad deadline '{s}'"))?;
        supervise.deadline = Some(std::time::Duration::from_millis(ms));
    }
    if let Some(s) = flags.get("--max-retries") {
        supervise.max_retries = s.parse().map_err(|_| format!("bad retry count '{s}'"))?;
    }
    let threads = flags
        .get("--threads")
        .map(|s| {
            s.parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("bad thread count '{s}'"))
        })
        .transpose()?;
    supervise.threads = threads;
    Ok(CharacterizationConfig {
        profile: grade10::core::attribution::ProfileConfig {
            slice: slice_ms * MILLIS,
            estimate_missing: lenient,
            threads,
            ..Default::default()
        },
        ingest: IngestConfig {
            mode: if lenient {
                IngestMode::Lenient
            } else {
                IngestMode::Strict
            },
        },
        supervise,
        ..Default::default()
    })
}

/// Renders a strict-mode ingestion failure with a pointer to `--lenient`
/// when the error class is recoverable.
fn ingest_error(e: &grade10::core::Grade10Error) -> String {
    if e.is_recoverable() {
        format!("{e}\n(the input looks damaged, not malformed: retry with --lenient to repair it)")
    } else {
        e.to_string()
    }
}

/// Parses `--inject CLASS[,CLASS...]` (+ `--fault-seed`) into a plan.
fn parse_fault_plan(flags: &HashMap<String, String>) -> Result<Option<FaultPlan>, String> {
    let Some(spec) = flags.get("--inject") else {
        return Ok(None);
    };
    let seed: u64 = flags
        .get("--fault-seed")
        .map(|s| s.parse().map_err(|_| format!("bad fault seed '{s}'")))
        .transpose()?
        .unwrap_or(1);
    Ok(Some(parse_fault_classes(spec, seed)?))
}

/// Parses a fault-class spec (`all`, `hostile`, or a comma-separated class
/// list) into a seeded plan. Shared by `--inject` and the campaign fault
/// axis.
fn parse_fault_classes(spec: &str, seed: u64) -> Result<FaultPlan, String> {
    if spec == "all" {
        return Ok(FaultPlan::all(seed));
    }
    if spec == "hostile" {
        return Ok(FaultPlan::hostile(seed));
    }
    let mut plan = FaultPlan::clean(seed);
    for name in spec.split(',') {
        let class = FaultClass::from_name(name.trim())
            .ok_or_else(|| format!("unknown fault class '{name}'"))?;
        plan.enable(class);
    }
    Ok(plan)
}

/// Parses an algorithm name shared by `demo --algorithm` and the campaign
/// workload axis.
fn parse_algorithm(name: &str) -> Result<Algorithm, String> {
    match name {
        "pr" => Ok(Algorithm::PageRank { iterations: 8 }),
        "bfs" => Ok(Algorithm::Bfs { root: 0 }),
        "wcc" => Ok(Algorithm::Wcc),
        "cdlp" => Ok(Algorithm::Cdlp { iterations: 8 }),
        "sssp" => Ok(Algorithm::Sssp { root: 0 }),
        "lcc" => Ok(Algorithm::Lcc),
        "prc" => Ok(Algorithm::PageRankConverge {
            epsilon_millionths: 100,
        }),
        other => Err(format!("unknown algorithm '{other}'")),
    }
}

/// Writes the characterization as a standalone HTML report.
fn write_html(
    model: &grade10::core::model::ExecutionModel,
    trace: &ExecutionTrace,
    result: &grade10::core::pipeline::Characterization,
    title: &str,
    path: &str,
) -> Result<(), String> {
    let html = render_html_report(
        model,
        trace,
        result,
        &HtmlConfig {
            title: format!("Grade10: {title}"),
            ..Default::default()
        },
    );
    atomic_write(std::path::Path::new(path), html.as_bytes())
        .map_err(|e| format!("write {path}: {e}"))?;
    eprintln!("wrote {path}");
    Ok(())
}

/// Runs a GraphX-flavored job on the Spark-like dataflow engine (§V).
fn demo_spark(
    dataset: Dataset,
    algorithm: Algorithm,
    flags: &HashMap<String, String>,
) -> Result<RunStatus, String> {
    use grade10::engines::dataflow::{
        dataflow_model, dataflow_rules_tuned, run_dataflow, DataflowConfig, JobSpec,
    };
    use grade10::graph::partition::EdgeCutPartition;

    let cfg = DataflowConfig::default();
    let graph = dataset.generate();
    let partitions = cfg.machines * cfg.executors * 2;
    let part = EdgeCutPartition::hash(&graph, partitions);
    let work = algorithm.run(&graph, &part);
    let job = JobSpec::from_work_profile(&work, 1.0e-4, 200.0, cfg.machines);
    eprintln!(
        "running {}-{} as a dataflow job ({} stages x {partitions} tasks) ...",
        algorithm.name(),
        dataset.name(),
        job.stages.len()
    );
    let out = run_dataflow(&job, &cfg);
    eprintln!("done: simulated runtime {:.2}s", out.end_time.as_secs_f64());

    let (model, phases) = dataflow_model();
    let rules = dataflow_rules_tuned(&phases, cfg.cores);
    let events = grade10::engines::bridge::to_raw_events(&out.logs);
    let trace = build_execution_trace(&model, &events)?;
    let resources = grade10::engines::bridge::to_resource_trace(&out.series, 8);
    let profiler = SelfProfiler::from_flags(flags);
    let result = characterize(&model, &rules, &trace, &resources, &CharacterizationConfig::default());
    print_characterization(&model, &trace, &result, flags.contains_key("--gantt"));
    profiler.finish(flags)?;
    Ok(RunStatus::Clean)
}

/// Writes the run's logs and coarse monitoring in the offline-analysis
/// formats: `events.jsonl` (raw log events) and `resources.json` (resource
/// trace at the recommended 8x downsampling).
fn export_logs(run: &grade10::engines::WorkloadRun, dir: &str) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
    // Both artifacts are rendered in memory and written atomically (temp
    // sibling + rename): a consumer polling the directory never sees a
    // truncated file, even if this process dies mid-export.
    let events = grade10::engines::bridge::to_raw_events(&run.sim.logs);
    let events_path = format!("{dir}/events.jsonl");
    let mut buf = Vec::new();
    grade10::core::parse::write_events_json(&events, &mut buf)
        .map_err(|e| format!("render {events_path}: {e}"))?;
    atomic_write(std::path::Path::new(&events_path), &buf)
        .map_err(|e| format!("write {events_path}: {e}"))?;
    let resources_path = format!("{dir}/resources.json");
    let rt = run.resource_trace(8);
    let json = serde_json::to_vec(&rt).map_err(|e| format!("render {resources_path}: {e}"))?;
    atomic_write(std::path::Path::new(&resources_path), &json)
        .map_err(|e| format!("write {resources_path}: {e}"))?;
    eprintln!("exported {events_path} and {resources_path}");
    Ok(())
}

fn parse_dataset(spec: &str, seed: u64) -> Result<Dataset, String> {
    let (kind, size) = spec
        .split_once(':')
        .ok_or_else(|| format!("dataset spec '{spec}' must be kind:size"))?;
    match kind {
        "rmat" => Ok(Dataset::Rmat {
            scale: size.parse().map_err(|_| format!("bad scale '{size}'"))?,
            seed,
        }),
        "social" => Ok(Dataset::Social {
            vertices: size.parse().map_err(|_| format!("bad size '{size}'"))?,
            seed,
        }),
        other => Err(format!("unknown dataset kind '{other}'")),
    }
}

fn export_model(flags: &HashMap<String, String>) -> Result<RunStatus, String> {
    let bundle = match flags
        .get("--engine")
        .ok_or("export-model needs --engine")?
        .as_str()
    {
        "giraph" => {
            let (execution, phases) = pregel_model();
            let cores = PregelConfig::default().cores;
            ModelBundle {
                framework: "giraph".into(),
                notes: format!("tuned rules assume {cores} cores per machine"),
                rules: pregel_rules_tuned(&phases, cores),
                resources: pregel_resource_model(),
                execution,
            }
        }
        "powergraph" => {
            let (execution, phases) = gas_model();
            let cores = GasConfig::default().cores;
            ModelBundle {
                framework: "powergraph".into(),
                notes: format!("tuned rules assume {cores} cores per machine"),
                rules: gas_rules_tuned(&phases, cores),
                resources: gas_resource_model(),
                execution,
            }
        }
        other => return Err(format!("unknown engine '{other}'")),
    };
    match flags.get("-o") {
        Some(path) => {
            atomic_write(std::path::Path::new(path), bundle.to_json().as_bytes())
                .map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => println!("{}", bundle.to_json()),
    }
    Ok(RunStatus::Clean)
}

fn analyze(flags: &HashMap<String, String>) -> Result<RunStatus, String> {
    let bundle_path = flags.get("--model").ok_or("analyze needs --model")?;
    let slice_ms: u64 = flags
        .get("--slice-ms")
        .map(|s| s.parse().map_err(|_| format!("bad slice '{s}'")))
        .transpose()?
        .unwrap_or(10);

    let bundle = ModelBundle::load(open(bundle_path)?).map_err(|e| e.to_string())?;
    let (events, resources) = if let Some(trace_path) = flags.get("--trace") {
        // Binary container: events plus (usually) embedded monitoring.
        // Validation — magic, version, section checksums — happens inside
        // the reader; any damage surfaces as a classified error here
        // instead of a garbage characterization.
        let bt = read_trace_file(std::path::Path::new(trace_path))
            .map_err(|e| format!("{trace_path}: {e}"))?;
        let resources = match flags.get("--resources") {
            // An explicit monitoring file overrides the embedded section.
            Some(rp) => serde_json::from_reader(BufReader::new(open(rp)?))
                .map_err(|e| format!("{rp}: {e}"))?,
            None => bt.resources.ok_or_else(|| {
                format!(
                    "{trace_path} has no monitoring section; pass --resources RESOURCES.json"
                )
            })?,
        };
        (bt.events, resources)
    } else {
        let events_path = flags
            .get("--events")
            .ok_or("analyze needs --events (or --trace)")?;
        let resources_path = flags
            .get("--resources")
            .ok_or("analyze needs --resources (or --trace)")?;
        let events = read_events_json(BufReader::new(open(events_path)?))
            .map_err(|e| format!("{events_path}: {e}"))?;
        let resources: ResourceTrace =
            serde_json::from_reader(BufReader::new(open(resources_path)?))
                .map_err(|e| format!("{resources_path}: {e}"))?;
        (events, resources)
    };

    // Deserialization does not validate the monitoring payload (NaN or
    // negative samples pass straight through serde), so both streams enter
    // through the ingestion layer: strict mode rejects damage with a
    // classified error, `--lenient` repairs it and reports the repairs.
    let monitoring = RawSeries::from_trace(&resources);
    let cfg = characterization_config(flags, slice_ms)?;
    if flags.contains_key("--partial") {
        return supervised(
            &bundle.execution,
            &bundle.rules,
            &events,
            &monitoring,
            &cfg,
            flags,
            &bundle.framework,
        );
    }
    let profiler = SelfProfiler::from_flags(flags);
    let input = ingest(&bundle.execution, &events, &monitoring, &cfg.ingest)
        .map_err(|e| ingest_error(&e))?;
    let result = characterize_ingested(&bundle.execution, &bundle.rules, &input, &cfg);
    eprintln!(
        "analyzed {} ({} phase instances, {} events)",
        bundle.framework,
        input.trace.instances().len(),
        events.len()
    );
    print_characterization(
        &bundle.execution,
        &input.trace,
        &result,
        flags.contains_key("--gantt"),
    );
    profiler.finish(flags)?;
    Ok(RunStatus::Clean)
}

/// Translates between the JSON-lines text formats and the binary trace
/// container. Text → binary needs `--events` (and optionally
/// `--resources`) plus `-o`; binary → text needs `--trace` plus
/// `--out-dir`, which receives `events.jsonl` and, when the container has
/// a monitoring section, `resources.json`.
fn convert(flags: &HashMap<String, String>) -> Result<RunStatus, String> {
    if let Some(trace_path) = flags.get("--trace") {
        let out_dir = flags.get("--out-dir").ok_or("convert --trace needs --out-dir")?;
        let bt = read_trace_file(std::path::Path::new(trace_path))
            .map_err(|e| format!("{trace_path}: {e}"))?;
        std::fs::create_dir_all(out_dir).map_err(|e| format!("create {out_dir}: {e}"))?;
        let events_path = format!("{out_dir}/events.jsonl");
        let mut buf = Vec::new();
        grade10::core::parse::write_events_json(&bt.events, &mut buf)
            .map_err(|e| format!("render {events_path}: {e}"))?;
        atomic_write(std::path::Path::new(&events_path), &buf)
            .map_err(|e| format!("write {events_path}: {e}"))?;
        let mut wrote = format!("{events_path} ({} events)", bt.events.len());
        if let Some(rt) = &bt.resources {
            let resources_path = format!("{out_dir}/resources.json");
            let json =
                serde_json::to_vec(rt).map_err(|e| format!("render {resources_path}: {e}"))?;
            atomic_write(std::path::Path::new(&resources_path), &json)
                .map_err(|e| format!("write {resources_path}: {e}"))?;
            wrote = format!("{wrote}, {resources_path} ({} resources)", rt.instances().len());
        }
        eprintln!("wrote {wrote}");
        return Ok(RunStatus::Clean);
    }
    let events_path = flags
        .get("--events")
        .ok_or("convert needs --events (text to binary) or --trace (binary to text)")?;
    let out_path = flags.get("-o").ok_or("convert --events needs -o OUT.g10t")?;
    let events = read_events_json(BufReader::new(open(events_path)?))
        .map_err(|e| format!("{events_path}: {e}"))?;
    let resources: Option<ResourceTrace> = flags
        .get("--resources")
        .map(|rp| {
            serde_json::from_reader(BufReader::new(open(rp)?)).map_err(|e| format!("{rp}: {e}"))
        })
        .transpose()?;
    write_trace_file(std::path::Path::new(out_path), &events, resources.as_ref())
        .map_err(|e| format!("write {out_path}: {e}"))?;
    eprintln!(
        "wrote {out_path} ({} events{})",
        events.len(),
        resources
            .as_ref()
            .map(|rt| format!(", {} resources", rt.instances().len()))
            .unwrap_or_default()
    );
    Ok(RunStatus::Clean)
}

fn open(path: &str) -> Result<File, String> {
    File::open(path).map_err(|e| format!("open {path}: {e}"))
}

/// Records the pipeline's own execution when `--self-profile` is set.
/// Create before the characterization runs, [`finish`](SelfProfiler::finish)
/// after the normal report printed.
struct SelfProfiler {
    recording: Option<obs::Recording>,
}

impl SelfProfiler {
    fn from_flags(flags: &HashMap<String, String>) -> Self {
        SelfProfiler {
            recording: flags.contains_key("--self-profile").then(obs::start),
        }
    }

    /// Characterizes the recorded meta-trace, prints the self-profile
    /// tables and optionally exports the meta-trace for offline analysis.
    /// A no-op without `--self-profile`.
    fn finish(self, flags: &HashMap<String, String>) -> Result<(), String> {
        let Some(recording) = self.recording else {
            return Ok(());
        };
        let raw = recording.finish();
        let meta = characterize_meta(&raw)
            .map_err(|e| format!("self-characterization failed: {e}"))?;
        print_self_profile(&meta);
        if let Some(dir) = flags.get("--self-export") {
            export_self_trace(&meta, dir)?;
        }
        Ok(())
    }
}

/// Prints Grade10's characterization of its own pipeline run.
fn print_self_profile(meta: &MetaCharacterization) {
    println!("\nself-profile: the pipeline characterized by itself");
    println!(
        "  {} spans on {} recorder threads over {}",
        meta.raw.spans.len(),
        meta.raw.num_threads(),
        SimDuration::from_nanos(meta.raw.end)
    );
    println!("\npipeline stage profile:");
    print!("{}", self_profile_table(meta).render());
    println!("\nrecorder-thread utilization:");
    print!("{}", machine_table(&meta.result.profile).render());
    println!("\npipeline bottlenecks, most impactful first:");
    if meta.result.issues.is_empty() {
        println!("  (none above threshold)");
    }
    for line in meta.result.summary(&meta.model) {
        println!("  - {line}");
    }
}

/// Writes the meta-trace in the offline-analysis formats (`model.json`,
/// `events.jsonl`, `resources.json`) so `grade10 analyze` can round-trip
/// the pipeline's characterization of itself.
fn export_self_trace(meta: &MetaCharacterization, dir: &str) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
    // Atomic writes throughout, same as export_logs: the exported trio is
    // either fully present or absent per file, never truncated.
    let model_path = format!("{dir}/model.json");
    atomic_write(
        std::path::Path::new(&model_path),
        obs::meta_bundle().to_json().as_bytes(),
    )
    .map_err(|e| format!("write {model_path}: {e}"))?;
    let events_path = format!("{dir}/events.jsonl");
    let mut buf = Vec::new();
    grade10::core::parse::write_events_json(&meta.events, &mut buf)
        .map_err(|e| format!("render {events_path}: {e}"))?;
    atomic_write(std::path::Path::new(&events_path), &buf)
        .map_err(|e| format!("write {events_path}: {e}"))?;
    let mut rt = ResourceTrace::new();
    for s in &meta.series {
        let idx = rt.add_resource(s.instance.clone());
        for &m in &s.measurements {
            rt.add_measurement(idx, m);
        }
    }
    let resources_path = format!("{dir}/resources.json");
    let json = serde_json::to_vec(&rt).map_err(|e| format!("render {resources_path}: {e}"))?;
    atomic_write(std::path::Path::new(&resources_path), &json)
        .map_err(|e| format!("write {resources_path}: {e}"))?;
    eprintln!(
        "exported self-trace; round-trip it with:\n  grade10 analyze --model {model_path} \
         --events {events_path} --resources {resources_path} --slice-ms 1"
    );
    Ok(())
}

fn print_characterization(
    model: &grade10::core::model::ExecutionModel,
    trace: &ExecutionTrace,
    result: &grade10::core::pipeline::Characterization,
    gantt: bool,
) {
    // Under --self-profile the rendering work is itself a pipeline stage.
    let _span = obs::span(obs::Stage::Report);
    if !result.ingest.is_clean() {
        println!("ingestion repaired a degraded input:");
        print!("{}", ingest_table(&result.ingest).render());
        println!();
    }
    println!(
        "baseline makespan (replayed): {:.2}s",
        result.base_makespan as f64 / 1e9
    );
    println!("\ncluster utilization:");
    print!("{}", machine_table(&result.profile).render());
    println!("\nattributed consumption by phase type:");
    print!("{}", usage_table(&result.profile, model, trace).render());
    println!("\nblocked time by phase type:");
    let mut any = false;
    for ((ty, res), secs) in result.bottlenecks.blocked_time_by_type(trace) {
        if secs > 0.01 {
            println!("  {} blocked on {res}: {secs:.2}s", model.type_path(ty));
            any = true;
        }
    }
    if !any {
        println!("  (none above 10 ms)");
    }
    println!("\nissues, most impactful first:");
    if result.issues.is_empty() {
        println!("  (none above threshold)");
    }
    for line in result.summary(model) {
        println!("  - {line}");
    }
    println!("\ncritical path (replayed), time per phase type:");
    let cp = critical_path(model, trace, &Default::default());
    for (path, secs) in cp.rows(model) {
        println!("  {path:<55} {secs:>7.2}s");
    }
    if gantt {
        println!("\nexecution gantt (top 3 levels):");
        print!("{}", render_gantt(model, trace, &GanttConfig::default()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parser_handles_pairs_and_switches() {
        let args: Vec<String> = ["--engine", "giraph", "--gantt", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f.get("--engine").unwrap(), "giraph");
        assert_eq!(f.get("--seed").unwrap(), "7");
        assert!(f.contains_key("--gantt"));
    }

    #[test]
    fn flag_parser_rejects_bare_values_and_dangling_flags() {
        let args = vec!["oops".to_string()];
        assert!(parse_flags(&args).is_err());
        let args = vec!["--engine".to_string()];
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn dataset_spec_parsing() {
        assert_eq!(
            parse_dataset("rmat:12", 1).unwrap(),
            Dataset::Rmat { scale: 12, seed: 1 }
        );
        assert_eq!(
            parse_dataset("social:5000", 2).unwrap(),
            Dataset::Social {
                vertices: 5000,
                seed: 2
            }
        );
        assert!(parse_dataset("nope", 1).is_err());
        assert!(parse_dataset("rmat:abc", 1).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&["frobnicate".to_string()]).is_err());
        assert!(run(&[]).is_err());
    }
}
