//! # grade10 — facade crate
//!
//! Re-exports the whole Grade10 reproduction workspace under one roof:
//!
//! * [`core`] — the Grade10 framework itself: execution/resource models,
//!   resource attribution, bottleneck identification, performance-issue
//!   detection, reporting;
//! * [`graph`] — the graph substrate: CSR graphs, generators, partitioners,
//!   instrumented algorithms;
//! * [`cluster`] — the simulated infrastructure: machines, CPU/network
//!   fair-sharing, GC, bounded queues, monitoring;
//! * [`engines`] — the simulated systems under test (Giraph-like BSP and
//!   PowerGraph-like GAS) plus their expert models and workload runner.
//!
//! See the `examples/` directory for end-to-end walkthroughs, starting
//! with `quickstart.rs`.

#![warn(missing_docs)]
// Library code must classify failures, not abort: unwrap/expect are only
// acceptable where an invariant makes failure impossible (and then a
// targeted allow with a reason documents why).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub use grade10_cluster as cluster;
pub use grade10_core as core;
pub use grade10_engines as engines;
pub use grade10_graph as graph;

/// Everything a typical characterization session needs, one import:
/// `use grade10::prelude::*;`.
pub mod prelude {
    pub use grade10_core::attribution::{build_profile, ProfileConfig, UpsampleMode};
    pub use grade10_core::bottleneck::{BottleneckConfig, BottleneckReport};
    pub use grade10_core::compare::compare_traces;
    pub use grade10_core::critical_path::critical_path;
    pub use grade10_core::infer::{infer_rules, InferenceConfig};
    pub use grade10_core::model::{
        AttributionRule, ExecutionModel, ExecutionModelBuilder, ModelBundle, Repeat,
        ResourceModel, RuleSet,
    };
    pub use grade10_core::pipeline::{characterize, characterize_events, CharacterizationConfig};
    pub use grade10_core::replay::{replay, replay_original, ReplayConfig};
    pub use grade10_core::trace::{
        ExecutionTrace, IngestConfig, IngestMode, IngestReport, RawSeries, ResourceInstance,
        ResourceTrace, TraceBuilder, MILLIS,
    };
    pub use grade10_core::Grade10Error;
    pub use grade10_engines::{
        run_workload, Algorithm, Dataset, EngineKind, WorkloadRun, WorkloadSpec,
    };
}
